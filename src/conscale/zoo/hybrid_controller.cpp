#include "conscale/zoo/hybrid_controller.h"

#include <algorithm>
#include <cmath>

namespace conscale::zoo {

namespace {
constexpr double kMinLevel = 1e-6;  ///< guards the growth-ratio division
}

HybridController::HybridController(Simulation& sim, TierSystem& system,
                                   const MetricsWarehouse& warehouse,
                                   HardwareAgent& hw,
                                   SoftResourcePolicy& policy,
                                   HybridControllerParams params)
    : sim_(sim), system_(system), warehouse_(warehouse), hw_(hw),
      policy_(policy), params_(params),
      cooldown_until_(system.tier_count(), -1.0) {
  // Soft loop, mirroring DecisionController: adapt when a scale-out VM
  // comes online (bootstrap VMs at t=0 are not scaling actions), and on a
  // slow periodic cadence so drift between hardware actions is caught too.
  system_.add_vm_ready_callback([this](std::size_t, Vm& vm) {
    if (vm.is_bootstrap()) return;
    ++adapts_;
    policy_.adapt(sim_.now());
  });
  step_task_ = std::make_unique<PeriodicTask>(
      sim_, params_.forecast.period, [this](SimTime now) { step(now); });
  if (params_.periodic_adapt > 0.0) {
    adapt_task_ = std::make_unique<PeriodicTask>(
        sim_, params_.periodic_adapt, [this](SimTime now) {
          ++adapts_;
          policy_.adapt(now);
        });
  }
}

void HybridController::step(SimTime now) {
  // Hardware loop: PredictiveController's Holt-Winters forecast, verbatim
  // (divergence between the two would make "hybrid vs holt-winters" grid
  // comparisons measure the wrong thing).
  const PredictiveControllerParams& fc = params_.forecast;
  const auto& series = warehouse_.system_series();
  if (series.empty()) return;
  const double throughput = series.back().throughput;
  if (!primed_) {
    level_ = throughput;
    trend_ = 0.0;
    primed_ = true;
    return;
  }
  const double prev_level = level_;
  level_ = fc.alpha * throughput + (1.0 - fc.alpha) * (level_ + trend_);
  trend_ = fc.beta * (level_ - prev_level) + (1.0 - fc.beta) * trend_;
  if (level_ < kMinLevel) return;  // no traffic yet: nothing to forecast
  ++forecasts_;
  const double steps = fc.horizon / fc.period;
  const double forecast = std::max(0.0, level_ + trend_ * steps);
  const double growth = forecast / level_;
  for (std::size_t i = 0; i < system_.tier_count(); ++i) {
    if (now < cooldown_until_[i]) continue;
    TierGroup& tier = system_.tier(i);
    const TierSample sample = warehouse_.latest_tier(tier.name());
    if (sample.running_vms == 0) continue;
    const double load = sample.avg_cpu_utilization *
                        static_cast<double>(sample.running_vms) * growth;
    const double billed = static_cast<double>(tier.billed_vms());
    const double desired = std::ceil(load / fc.target_utilization);
    if (desired > billed) {
      if (hw_.scale_out(i)) {
        ++scale_outs_;
        cooldown_until_[i] = now + fc.cooldown;
        // Soft adapt lands when the VM is ready (vm-ready hook above).
      }
    } else if (billed > 1.0 &&
               load / (billed - 1.0) <
                   fc.target_utilization * fc.scale_in_fraction) {
      if (hw_.scale_in(i)) {
        ++scale_ins_;
        cooldown_until_[i] = now + fc.cooldown;
        // Capacity already shrank: re-fit the soft resources immediately,
        // as DecisionController does on scale-in.
        ++adapts_;
        policy_.adapt(now);
      }
    }
  }
}

ControllerCounters HybridController::counters() const {
  return {{"adapts", adapts_},
          {"forecasts", forecasts_},
          {"scale_ins", scale_ins_},
          {"scale_outs", scale_outs_}};
}

}  // namespace conscale::zoo
