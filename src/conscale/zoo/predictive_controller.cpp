#include "conscale/zoo/predictive_controller.h"

#include <algorithm>
#include <cmath>

namespace conscale::zoo {

namespace {
constexpr double kMinLevel = 1e-6;  ///< guards the growth-ratio division
}

PredictiveController::PredictiveController(Simulation& sim,
                                           TierSystem& system,
                                           const MetricsWarehouse& warehouse,
                                           HardwareAgent& hw,
                                           PredictiveControllerParams params)
    : system_(system), warehouse_(warehouse), hw_(hw), params_(params),
      cooldown_until_(system.tier_count(), -1.0) {
  step_task_ = std::make_unique<PeriodicTask>(
      sim, params_.period, [this](SimTime now) { step(now); });
}

void PredictiveController::step(SimTime now) {
  const auto& series = warehouse_.system_series();
  if (series.empty()) return;
  const double throughput = series.back().throughput;
  if (!primed_) {
    level_ = throughput;
    trend_ = 0.0;
    primed_ = true;
    return;
  }
  const double prev_level = level_;
  level_ = params_.alpha * throughput +
           (1.0 - params_.alpha) * (level_ + trend_);
  trend_ = params_.beta * (level_ - prev_level) +
           (1.0 - params_.beta) * trend_;
  if (level_ < kMinLevel) return;  // no traffic yet: nothing to forecast
  ++forecasts_;
  // Trend is per decision period; project it `horizon` seconds out.
  const double steps = params_.horizon / params_.period;
  const double forecast = std::max(0.0, level_ + trend_ * steps);
  const double growth = forecast / level_;
  for (std::size_t i = 0; i < system_.tier_count(); ++i) {
    if (now < cooldown_until_[i]) continue;
    TierGroup& tier = system_.tier(i);
    const TierSample sample = warehouse_.latest_tier(tier.name());
    if (sample.running_vms == 0) continue;
    // Forecast CPU demand in whole-VM units, assuming utilization scales
    // with the completion rate.
    const double load = sample.avg_cpu_utilization *
                        static_cast<double>(sample.running_vms) * growth;
    const double billed = static_cast<double>(tier.billed_vms());
    const double desired = std::ceil(load / params_.target_utilization);
    if (desired > billed) {
      if (hw_.scale_out(i)) {
        ++scale_outs_;
        cooldown_until_[i] = now + params_.cooldown;
      }
    } else if (billed > 1.0 &&
               load / (billed - 1.0) <
                   params_.target_utilization * params_.scale_in_fraction) {
      // Even one VM short, the forecast sits well inside the target band.
      if (hw_.scale_in(i)) {
        ++scale_ins_;
        cooldown_until_[i] = now + params_.cooldown;
      }
    }
  }
}

ControllerCounters PredictiveController::counters() const {
  return {{"forecasts", forecasts_},
          {"scale_ins", scale_ins_},
          {"scale_outs", scale_outs_}};
}

}  // namespace conscale::zoo
