// Hybrid proactive/adaptive autoscaler (controller zoo): Holt-Winters
// forecasting on the hardware loop combined with ConScale's online SCT
// soft-resource adaptation.
//
// The zoo's two most capable loops attack different halves of the response
// time problem. HoltWinters-Pred hides the VM preparation delay by scaling
// to a forecast, but leaves thread/connection pools static, so the fresh
// capacity serves behind mis-sized soft resources. ConScale adapts the soft
// resources fast, but its hardware loop is the reactive threshold rule that
// eats the full preparation delay on every ramp. This controller composes
// the complementary halves: the PredictiveController forecast drives
// scale-out/in, and every hardware action (VM ready, drain started) plus a
// slow periodic cadence re-runs the SCT-backed policy adaptation exactly as
// DecisionController would.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cluster/tier_system.h"
#include "conscale/agents.h"
#include "conscale/controller.h"
#include "conscale/policy.h"
#include "conscale/zoo/zoo_params.h"
#include "metrics/warehouse.h"
#include "simcore/simulation.h"

namespace conscale::zoo {

class HybridController final : public Controller {
 public:
  HybridController(Simulation& sim, TierSystem& system,
                   const MetricsWarehouse& warehouse, HardwareAgent& hw,
                   SoftResourcePolicy& policy, HybridControllerParams params);

  ControllerCounters counters() const override;

 private:
  void step(SimTime now);

  Simulation& sim_;
  TierSystem& system_;
  const MetricsWarehouse& warehouse_;
  HardwareAgent& hw_;
  SoftResourcePolicy& policy_;
  HybridControllerParams params_;
  std::unique_ptr<PeriodicTask> step_task_;
  std::unique_ptr<PeriodicTask> adapt_task_;
  // Holt state over the 1 s completion-rate series (see
  // PredictiveController; the smoothing math is deliberately identical).
  double level_ = 0.0;
  double trend_ = 0.0;
  bool primed_ = false;
  std::vector<SimTime> cooldown_until_;  ///< by tier index
  std::uint64_t forecasts_ = 0;
  std::uint64_t scale_outs_ = 0;
  std::uint64_t scale_ins_ = 0;
  std::uint64_t adapts_ = 0;
};

}  // namespace conscale::zoo
