#include "conscale/estimator_service.h"

#include <cmath>

#include "sct/scatter.h"

namespace conscale {

ConcurrencyEstimatorService::ConcurrencyEstimatorService(
    Simulation& sim, TierSystem& system, const MetricsWarehouse& warehouse,
    EstimatorServiceParams params, const RunContext* context)
    : sim_(sim), system_(system),
      ctx_(context ? context : &RunContext::global()), warehouse_(warehouse),
      params_(params), estimator_(params.sct) {
  refresh_task_ = std::make_unique<PeriodicTask>(
      sim_, params_.refresh, [this](SimTime now) { refresh(now); });
}

std::optional<RationalRange> ConcurrencyEstimatorService::tier_estimate(
    const std::string& tier_name) const {
  auto it = cache_.find(tier_name);
  if (it == cache_.end()) return std::nullopt;
  return it->second;
}

void ConcurrencyEstimatorService::refresh_now() { refresh(sim_.now()); }

void ConcurrencyEstimatorService::refresh(SimTime now) {
  for (std::size_t i = 0; i < system_.tier_count(); ++i) {
    TierGroup& tier = system_.tier(i);
    ScatterSet scatter;
    SimTime newest = 0.0;
    bool any_samples = false;
    for (Vm* vm : tier.all_vms()) {
      // Draining/stopped servers contributed valid samples while running;
      // the warehouse window naturally ages them out.
      const auto samples =
          warehouse_.server_window(vm->name(), params_.window, now);
      if (!samples.empty()) {
        any_samples = true;
        if (samples.back().t_end > newest) newest = samples.back().t_end;
      }
      scatter.add_all(samples);
    }
    // The staleness guard only applies to tiers that have data in the
    // window: a tier with none (not yet monitored, or blacked out longer
    // than the whole window) has nothing to hold — estimate() bails anyway.
    if (any_samples && params_.max_staleness > 0.0 &&
        now - newest > params_.max_staleness) {
      // Monitoring dropout: the window's newest sample predates the gap.
      // Re-estimating from the shrinking remainder would bias the curve, so
      // the cached range stays authoritative until samples flow again.
      ++stale_skips_;
      continue;
    }
    auto range = estimator_.estimate(scatter);
    if (!range) continue;
    // A window that never left the plateau (no descending stage) is
    // right-censored: its Q_lower reflects recent *demand*, not the server's
    // capacity knee. Capping soft resources from such a window would
    // throttle the next surge, so only fully-observed curves (Fig 4: all
    // three stages) update the recommendation; otherwise the cached range —
    // learned from the last genuine overload — stays authoritative.
    if (!range->descending_observed) continue;
    auto it = cache_.find(tier.name());
    if (it != cache_.end() && params_.smoothing < 1.0) {
      const double a = params_.smoothing;
      auto blend = [a](int fresh, int cached) {
        return static_cast<int>(std::lround(a * fresh + (1.0 - a) * cached));
      };
      range->q_lower = blend(range->q_lower, it->second.q_lower);
      range->q_upper = blend(range->q_upper, it->second.q_upper);
      range->optimal = range->q_lower;
      // A blend involving a censored edge stays censored (safe side).
      range->q_upper_censored =
          range->q_upper_censored || it->second.q_upper_censored;
      range->tp_max =
          a * range->tp_max + (1.0 - a) * it->second.tp_max;
    }
    cache_[tier.name()] = *range;
    history_.push_back({now, tier.name(), *range});
    CS_RUN_LOG_DEBUG(*ctx_)
        << "SCT " << tier.name() << ": Q_lower=" << range->q_lower
        << " Q_upper=" << range->q_upper << " TPmax=" << range->tp_max
        << " at t=" << now;
  }
}

}  // namespace conscale
