// Soft-resource policies: what differentiates the three evaluated frameworks
// (§V). All three share the same threshold-based *hardware* scaling; they
// differ in what happens to the soft resources when the system scales:
//
//   Ec2AutoScalingPolicy  nothing — soft resources stay at their static
//                         initial allocation (hardware-only scaling).
//   DcmPolicy             applies per-tier optimal-concurrency values from an
//                         *offline* pre-profiled table (Wang et al., TPDS'18).
//                         Correct for the training conditions; silently stale
//                         when the dataset / workload / hardware change.
//   ConScalePolicy        queries the online SCT estimator for each tier's
//                         fresh Q_lower and applies it — the paper's
//                         contribution.
//
// DCM and ConScale share the same application arithmetic (apply_optima);
// the only difference is where the per-tier optimum comes from. That
// isolates offline-vs-online as the experimental variable, exactly as the
// paper frames it.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "cluster/tier_system.h"
#include "conscale/agents.h"
#include "conscale/estimator_service.h"

namespace conscale {

/// Which soft resources the software agent manages.
struct SoftAdaptTargets {
  /// Tiers whose worker thread pool tracks their own optimal concurrency
  /// (the Tomcat thread pool in the paper's implementation).
  std::vector<std::size_t> thread_adapt_tiers;
  /// (upstream tier, downstream tier) pairs: the upstream tier's per-server
  /// connection pool is sized so the *total* concurrency arriving at the
  /// downstream tier equals the downstream optimum times its replica count
  /// (the Tomcat DB-connection pool restricting MySQL concurrency).
  std::vector<std::pair<std::size_t, std::size_t>> conn_adapt;
};

class SoftResourcePolicy {
 public:
  virtual ~SoftResourcePolicy() = default;
  virtual std::string name() const = 0;
  /// Invoked by the Decision Controller right after a hardware scaling
  /// action completes (and, for ConScale, whenever a fresh recommendation
  /// should be applied).
  virtual void adapt(SimTime now) = 0;
};

/// Shared application arithmetic for concurrency-aware policies.
/// `optimum_for_tier` returns the per-server optimal concurrency for a tier,
/// or nullopt to leave that tier's allocation untouched.
void apply_optima(
    TierSystem& system, SoftwareAgent& agent, const SoftAdaptTargets& targets,
    const std::function<std::optional<int>(std::size_t)>& optimum_for_tier);

/// EC2-AutoScaling: hardware-only; soft resources never move.
class Ec2AutoScalingPolicy final : public SoftResourcePolicy {
 public:
  std::string name() const override { return "EC2-AutoScaling"; }
  void adapt(SimTime) override {}
};

/// The offline profile DCM was trained with: per-tier optimal concurrency
/// under the *training* conditions.
struct DcmProfile {
  std::map<std::size_t, int> tier_optimal_concurrency;
};

class DcmPolicy final : public SoftResourcePolicy {
 public:
  DcmPolicy(TierSystem& system, SoftwareAgent& agent,
            SoftAdaptTargets targets, DcmProfile profile)
      : system_(system), agent_(agent), targets_(std::move(targets)),
        profile_(std::move(profile)) {}

  std::string name() const override { return "DCM"; }
  void adapt(SimTime now) override;

 private:
  TierSystem& system_;
  SoftwareAgent& agent_;
  SoftAdaptTargets targets_;
  DcmProfile profile_;
};

class ConScalePolicy final : public SoftResourcePolicy {
 public:
  /// `headroom` scales the applied allocation above the estimated Q_lower.
  /// Q_lower is the *left edge* of the plateau; applying it exactly leaves
  /// zero slack for estimation noise and sampling censoring (once a pool is
  /// capped, concurrency beyond the cap can never be observed again), so a
  /// small cushion keeps the operating point safely inside the stable stage.
  ConScalePolicy(TierSystem& system, SoftwareAgent& agent,
                 SoftAdaptTargets targets,
                 ConcurrencyEstimatorService& estimator,
                 double headroom = 1.2)
      : system_(system), agent_(agent), targets_(std::move(targets)),
        estimator_(estimator), headroom_(headroom) {}

  std::string name() const override { return "ConScale"; }
  void adapt(SimTime now) override;

 private:
  TierSystem& system_;
  SoftwareAgent& agent_;
  SoftAdaptTargets targets_;
  ConcurrencyEstimatorService& estimator_;
  double headroom_;
};

}  // namespace conscale
