#include "conscale/agents.h"

namespace conscale {

HardwareAgent::HardwareAgent(Simulation& sim, TierSystem& system,
                             const RunContext* context)
    : sim_(sim), system_(system),
      ctx_(context ? context : &RunContext::global()) {}

bool HardwareAgent::scale_out(std::size_t tier_index) {
  TierGroup& tier = system_.tier(tier_index);
  if (!tier.scale_out()) return false;
  events_.push_back({sim_.now(), tier.name(), "scale-out",
                     static_cast<double>(tier.billed_vms())});
  return true;
}

bool HardwareAgent::scale_in(std::size_t tier_index) {
  TierGroup& tier = system_.tier(tier_index);
  if (!tier.scale_in()) return false;
  events_.push_back({sim_.now(), tier.name(), "scale-in",
                     static_cast<double>(tier.billed_vms())});
  return true;
}

bool HardwareAgent::scale_vertical(std::size_t tier_index, int cores) {
  TierGroup& tier = system_.tier(tier_index);
  if (!tier.set_cores(cores)) return false;
  events_.push_back({sim_.now(), tier.name(), "scale-vertical",
                     static_cast<double>(cores)});
  return true;
}

bool HardwareAgent::set_tier_cpu_entitlement(std::size_t tier_index,
                                             double factor) {
  if (!(factor > 0.0)) return false;
  TierGroup& tier = system_.tier(tier_index);
  tier.set_vm_cpu_speed_factor(TierGroup::kAllVms, factor);
  events_.push_back({sim_.now(), tier.name(), "entitlement", factor});
  return true;
}

SoftwareAgent::SoftwareAgent(Simulation& sim, TierSystem& system,
                             const RunContext* context)
    : sim_(sim), system_(system),
      ctx_(context ? context : &RunContext::global()) {}

void SoftwareAgent::set_tier_threads(std::size_t tier_index,
                                     std::size_t size) {
  TierGroup& tier = system_.tier(tier_index);
  if (tier.thread_pool_size() == size) return;  // idempotent
  events_.push_back({sim_.now(), tier.name(), "threads",
                     static_cast<double>(size)});
  CS_RUN_LOG_INFO(*ctx_) << tier.name() << ": thread pool -> " << size
                         << " at t=" << sim_.now();
  sim_.schedule_after(params_.actuation_delay, [&tier, size] {
    tier.set_thread_pool_size(size);
  });
}

void SoftwareAgent::set_tier_downstream_pool(std::size_t tier_index,
                                             std::size_t size) {
  TierGroup& tier = system_.tier(tier_index);
  if (tier.downstream_pool_size() == size) return;
  events_.push_back({sim_.now(), tier.name(), "dbconn",
                     static_cast<double>(size)});
  CS_RUN_LOG_INFO(*ctx_) << tier.name() << ": downstream pool -> " << size
                         << " at t=" << sim_.now();
  sim_.schedule_after(params_.actuation_delay, [&tier, size] {
    tier.set_downstream_pool_size(size);
  });
}

}  // namespace conscale
