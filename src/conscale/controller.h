// The controller layer. `Controller` is the abstract plug-in interface every
// scaling framework's decision loop implements; registered builders
// (conscale/registry.h) return one per run. `DecisionController` (Fig 8) is
// the shared threshold-rule implementation the paper's three frameworks use:
// every second it reads each tier's CPU utilization from the Metrics
// Warehouse, runs the shared threshold rule, and orders the hardware agent
// to scale out/in. Whenever a hardware action completes (the new VM is
// Running, or a drain has started), it asks the soft-resource policy to
// adapt — which is where EC2-AutoScaling, DCM, and ConScale diverge.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cluster/tier_system.h"
#include "conscale/agents.h"
#include "conscale/policy.h"
#include "conscale/threshold_rule.h"
#include "metrics/warehouse.h"
#include "simcore/simulation.h"

namespace conscale {

/// Generic, ordered counter map every controller reports through — the
/// report/CSV/JSON layers iterate it without knowing the controller type,
/// so a new plug-in's counters surface with zero report-layer changes.
using ControllerCounters = std::map<std::string, std::uint64_t>;

/// Abstract decision loop: the per-run object that watches the warehouse
/// and drives the hardware/software agents. Implementations schedule their
/// own periodic tasks on the run's Simulation at construction time; the
/// framework owns them for the lifetime of the run. Keep construction
/// side-effect-free beyond scheduling — runs must stay bit-reproducible.
class Controller {
 public:
  virtual ~Controller() = default;
  /// Diagnostic counters for reports (decision/actuation totals). Keys are
  /// free-form but stable within a controller; values are run totals.
  virtual ControllerCounters counters() const = 0;
};

struct ControllerConfig {
  ThresholdRuleParams rule;
  SimDuration tick = 1.0;  ///< decision period (Fig 8: 1 s metrics)
  /// Also re-run the policy's adaptation on a slow periodic cadence, so a
  /// drifting environment is caught even without hardware scaling events.
  /// 0 disables (the paper's base behaviour: adapt at scaling time only).
  SimDuration periodic_adapt = 0.0;
  /// Monitoring-dropout guard: when > 0, a tier whose newest warehouse
  /// sample is older than this many seconds is held — no scaling decision is
  /// taken on blank or stale data (the last sample would otherwise be
  /// replayed every tick). 0 disables the guard (fault-free default).
  SimDuration metric_staleness_limit = 0.0;
};

class DecisionController : public Controller {
 public:
  DecisionController(Simulation& sim, TierSystem& system,
                     const MetricsWarehouse& warehouse, HardwareAgent& hw,
                     SoftwareAgent& sw, SoftResourcePolicy& policy,
                     ControllerConfig config);

  std::uint64_t scale_out_count() const { return scale_outs_; }
  std::uint64_t scale_in_count() const { return scale_ins_; }
  std::uint64_t adapt_count() const { return adapts_; }
  /// Tier-ticks skipped because metrics were stale (dropout guard).
  std::uint64_t stale_skip_count() const { return stale_skips_; }

  ControllerCounters counters() const override;

 private:
  void tick(SimTime now);

  Simulation& sim_;
  TierSystem& system_;
  const MetricsWarehouse& warehouse_;
  HardwareAgent& hw_;
  SoftwareAgent& sw_;
  SoftResourcePolicy& policy_;
  ControllerConfig config_;
  std::vector<ThresholdRule> rules_;  ///< one per tier
  std::unique_ptr<PeriodicTask> tick_task_;
  std::unique_ptr<PeriodicTask> adapt_task_;
  std::uint64_t scale_outs_ = 0;
  std::uint64_t scale_ins_ = 0;
  std::uint64_t adapts_ = 0;
  std::uint64_t stale_skips_ = 0;
};

}  // namespace conscale
