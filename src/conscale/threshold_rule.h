// ThresholdRule: the classic utilization-threshold autoscaling rule that all
// three evaluated frameworks share for *hardware* scaling (§V): scale out
// when tier CPU exceeds the high threshold (EC2-AutoScaling's 80 %), scale
// in when it stays under the low threshold. Implements the paper's
// "quick start but slow turn off" strategy (after Gandhi et al.): the
// scale-out decision needs only a couple of consecutive hot samples, the
// scale-in decision requires a long sustained cold period, and a cooldown
// suppresses oscillation after any action (cf. Dutreilh et al., related
// work).
#pragma once

#include <string>

#include "common/time_units.h"

namespace conscale {

enum class ScalingDirection { kNone, kOut, kIn };

std::string to_string(ScalingDirection direction);

struct ThresholdRuleParams {
  double scale_out_threshold = 0.80;  ///< the paper's pre-defined 80 %
  double scale_in_threshold = 0.30;
  int out_sustain_ticks = 2;   ///< quick start
  int in_sustain_ticks = 45;   ///< slow turn off
  SimDuration cooldown = 20.0; ///< quiet period after any scaling action
};

class ThresholdRule {
 public:
  explicit ThresholdRule(ThresholdRuleParams params) : params_(params) {}

  /// Feeds one utilization sample; returns the action to take now.
  /// `blocked` indicates an in-flight scaling action on this tier
  /// (e.g. a VM still provisioning) — evaluation pauses while set.
  ScalingDirection evaluate(SimTime now, double cpu_utilization, bool blocked);

  /// Must be called when an action is actually executed, to start the
  /// cooldown and reset the sustain counters.
  void on_action(SimTime now);

  const ThresholdRuleParams& params() const { return params_; }
  int hot_ticks() const { return hot_ticks_; }
  int cold_ticks() const { return cold_ticks_; }

 private:
  ThresholdRuleParams params_;
  int hot_ticks_ = 0;
  int cold_ticks_ = 0;
  SimTime cooldown_until_ = -1.0;
};

}  // namespace conscale
