#include "conscale/policy.h"

#include <algorithm>
#include <cmath>

namespace conscale {

void apply_optima(
    TierSystem& system, SoftwareAgent& agent, const SoftAdaptTargets& targets,
    const std::function<std::optional<int>(std::size_t)>& optimum_for_tier) {
  for (std::size_t tier : targets.thread_adapt_tiers) {
    if (auto optimum = optimum_for_tier(tier)) {
      agent.set_tier_threads(tier,
                             static_cast<std::size_t>(std::max(*optimum, 1)));
    }
  }
  for (const auto& [upstream, downstream] : targets.conn_adapt) {
    auto optimum = optimum_for_tier(downstream);
    if (!optimum) continue;
    const auto n_down =
        std::max<std::size_t>(system.tier(downstream).running_vms(), 1);
    const auto n_up =
        std::max<std::size_t>(system.tier(upstream).running_vms(), 1);
    // Per-upstream-server pool so that the sum across upstream replicas
    // equals optimum × downstream replicas (§V: after adding a Tomcat, the
    // per-Tomcat pool must shrink or MySQL concurrency doubles).
    const double per_server = static_cast<double>(*optimum) *
                              static_cast<double>(n_down) /
                              static_cast<double>(n_up);
    agent.set_tier_downstream_pool(
        upstream,
        static_cast<std::size_t>(std::max(std::lround(per_server), 1L)));
  }
}

void DcmPolicy::adapt(SimTime) {
  apply_optima(system_, agent_, targets_,
               [this](std::size_t tier) -> std::optional<int> {
                 auto it = profile_.tier_optimal_concurrency.find(tier);
                 if (it == profile_.tier_optimal_concurrency.end()) {
                   return std::nullopt;
                 }
                 return it->second;
               });
}

void ConScalePolicy::adapt(SimTime) {
  // Pull the freshest window before recommending — the whole point is that
  // the estimate reflects the *current* runtime environment.
  estimator_.refresh_now();
  apply_optima(system_, agent_, targets_,
               [this](std::size_t tier) -> std::optional<int> {
                 auto range =
                     estimator_.tier_estimate(system_.tier(tier).name());
                 if (!range) return std::nullopt;
                 // Pad above Q_lower for estimation noise. Q_upper caps the
                 // padding only when it is a *measured* knee-top; a censored
                 // edge (observations simply stop there) must not squeeze
                 // the headroom — an allocation pinned slightly below the
                 // true knee hides demand from the CPU-threshold scaler and
                 // deadlocks the hardware loop.
                 double padded = headroom_ * range->optimal;
                 if (!range->q_upper_censored) {
                   padded = std::min(padded,
                                     static_cast<double>(range->q_upper));
                 }
                 return static_cast<int>(std::lround(padded));
               });
}

}  // namespace conscale
