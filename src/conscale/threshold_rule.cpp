#include "conscale/threshold_rule.h"

namespace conscale {

std::string to_string(ScalingDirection direction) {
  switch (direction) {
    case ScalingDirection::kNone:
      return "none";
    case ScalingDirection::kOut:
      return "scale-out";
    case ScalingDirection::kIn:
      return "scale-in";
  }
  return "?";
}

ScalingDirection ThresholdRule::evaluate(SimTime now, double cpu_utilization,
                                         bool blocked) {
  if (blocked || now < cooldown_until_) {
    // Keep counters from accumulating stale pressure during blackouts.
    hot_ticks_ = 0;
    cold_ticks_ = 0;
    return ScalingDirection::kNone;
  }
  if (cpu_utilization >= params_.scale_out_threshold) {
    ++hot_ticks_;
    cold_ticks_ = 0;
    if (hot_ticks_ >= params_.out_sustain_ticks) {
      return ScalingDirection::kOut;
    }
  } else if (cpu_utilization <= params_.scale_in_threshold) {
    ++cold_ticks_;
    hot_ticks_ = 0;
    if (cold_ticks_ >= params_.in_sustain_ticks) {
      return ScalingDirection::kIn;
    }
  } else {
    hot_ticks_ = 0;
    cold_ticks_ = 0;
  }
  return ScalingDirection::kNone;
}

void ThresholdRule::on_action(SimTime now) {
  hot_ticks_ = 0;
  cold_ticks_ = 0;
  cooldown_until_ = now + params_.cooldown;
}

}  // namespace conscale
