// Actuators (Fig 8, step 4-6): the hardware agent performs VM scaling via
// the cluster layer ("calling hypervisor APIs remotely"), the software agent
// performs runtime soft-resource reallocation (the JMX/RMI path in the real
// implementation, §IV-A). Both log every action for the experiment reports,
// and the software agent applies changes after a small actuation latency —
// a remote JMX call is fast but not instantaneous.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/tier_system.h"
#include "common/run_context.h"
#include "simcore/simulation.h"

namespace conscale {

struct ScalingEvent {
  SimTime t = 0.0;
  std::string tier;
  std::string action;  ///< "scale-out", "scale-in", "threads", "dbconn"
  double value = 0.0;  ///< pool size for soft actions; VM count after hw ones
};

class HardwareAgent {
 public:
  HardwareAgent(Simulation& sim, TierSystem& system,
                const RunContext* context = nullptr);

  /// Returns true if the scale-out was initiated (VM begins provisioning).
  bool scale_out(std::size_t tier_index);
  /// Returns true if a VM drain was initiated.
  bool scale_in(std::size_t tier_index);
  /// Vertical scaling: per-VM core count for the tier. Note that this
  /// changes the tier's optimal concurrency (§III-C.1) — callers should let
  /// the soft-resource policy adapt afterwards.
  bool scale_vertical(std::size_t tier_index, int cores);
  /// Fine-grained vertical scaling: sets every VM in the tier's CPU
  /// entitlement (per-core speed as a fraction of nominal; VMs created
  /// later inherit it). The hypervisor-credit knob the zoo's vertical
  /// controller drives. Returns false for factors outside (0, inf).
  bool set_tier_cpu_entitlement(std::size_t tier_index, double factor);

  const std::vector<ScalingEvent>& events() const { return events_; }

 private:
  Simulation& sim_;
  TierSystem& system_;
  const RunContext* ctx_;
  std::vector<ScalingEvent> events_;
};

class SoftwareAgent {
 public:
  struct Params {
    SimDuration actuation_delay = 0.1;  ///< JMX round-trip + pool adjustment
  };

  SoftwareAgent(Simulation& sim, TierSystem& system,
                const RunContext* context = nullptr);

  /// Sets every server in the tier's worker thread pool to `size`.
  void set_tier_threads(std::size_t tier_index, std::size_t size);
  /// Sets every server in the tier's downstream connection pool to `size`
  /// (the app tier's per-Tomcat DB connection pool).
  void set_tier_downstream_pool(std::size_t tier_index, std::size_t size);

  const std::vector<ScalingEvent>& events() const { return events_; }

 private:
  Simulation& sim_;
  TierSystem& system_;
  const RunContext* ctx_;
  Params params_;
  std::vector<ScalingEvent> events_;
};

}  // namespace conscale
