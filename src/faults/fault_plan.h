// FaultPlan: a declarative, deterministic schedule of environment
// perturbations to replay against a running TierSystem. The plan is data —
// it names *what* happens and *when*; the FaultInjector (injector.h) turns
// it into simcore events. Because plans carry no randomness of their own,
// the same plan + scenario seed reproduces the same run bit-for-bit, serial
// or fanned out across worker threads.
//
// Plans parse from a compact text form (the repo has a JSON writer but no
// parser — see common/json.h), one event per line or ';'-separated, with
// '#' starting a comment:
//
//   # crash the oldest running app VM at t=120 s, restart 30 s later
//   crash t=120 tier=app vm=0 restart=30
//   # 60 s noisy-neighbor window: every DB VM at 40 % of nominal speed
//   cpu t=200 dur=60 tier=db vm=all factor=0.4
//   # degraded provisioning API: scale-outs take 3x longer for 12 min
//   boot t=0 dur=720 tier=app factor=3
//   # monitoring dropout: the warehouse ingests nothing for 30 s
//   drop t=240 dur=30
//
// `tier` accepts a 0-based index, an exact tier name ("Tomcat"), or the
// aliases web/app/db (the RUBBoS 3-tier layout). `boot` with no tier hits
// every tier. `restart` omitted or negative means the crash is permanent.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/time_units.h"

namespace conscale {

enum class FaultKind {
  kVmCrash,           ///< VM failure + optional delayed restart
  kCpuInterference,   ///< time-windowed per-core speed degradation
  kBootJitter,        ///< time-windowed provisioning-delay multiplier
  kMonitoringDropout  ///< time-windowed metric-ingestion blackout
};

std::string to_string(FaultKind kind);

struct FaultEvent {
  FaultKind kind = FaultKind::kVmCrash;
  SimTime at = 0.0;            ///< injection time [s]
  SimDuration duration = 0.0;  ///< window length (cpu / boot / drop)
  /// Tier selector as written in the plan (index, name, or alias); empty
  /// means "all tiers" (boot) — crash and cpu require a tier.
  std::string tier;
  std::size_t vm_ordinal = 0;  ///< which running (crash) / billed (cpu) VM
  bool all_vms = false;        ///< cpu: hit every billed VM of the tier
  double factor = 1.0;         ///< cpu: speed multiplier; boot: delay mult.
  /// Crash: restart this many seconds after the failure; < 0 = permanent.
  SimDuration restart_delay = -1.0;

  /// Canonical single-line form (parse(to_line(e)) round-trips).
  std::string to_line() const;
};

struct FaultPlan {
  std::vector<FaultEvent> events;

  bool empty() const { return events.empty(); }

  /// Parses the text form described above. Throws std::invalid_argument on
  /// unknown kinds, unknown keys, malformed values, or missing required
  /// fields — a typo'd plan must fail loudly, not silently not inject.
  static FaultPlan parse(const std::string& text);

  /// Canonical text form, one event per line (stable across round-trips;
  /// used by run reports so a result names the plan that produced it).
  std::string to_text() const;
};

}  // namespace conscale
