// FaultInjector: arms a FaultPlan against a running TierSystem by
// translating each declarative event into ordinary simcore events. All
// scheduling happens in arm(), before the simulation advances, so the
// injections interleave with workload and control-loop events in the
// deterministic (time, sequence) order — the same plan and seed reproduce
// the same run exactly, serial or under parallel fan-out.
//
// What each FaultKind does:
//  - kVmCrash: deregisters the target VM from its tier LB, errors every
//    in-flight request on it (Server::fail), and optionally schedules a
//    restart that re-provisions with the tier's current prep delay.
//  - kCpuInterference: sets per-core speed to template x factor on the
//    targeted VM(s) at window start and restores the original speed of
//    exactly those servers at window end (noisy neighbor / Q-clouds).
//  - kBootJitter: multiplies the tier's provisioning delay for scale-outs
//    and crash-restarts started inside the window.
//  - kMonitoringDropout: disables MetricsWarehouse ingestion for the
//    window; samples produced meanwhile are counted and dropped.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/tier_system.h"
#include "common/run_context.h"
#include "faults/fault_plan.h"
#include "metrics/warehouse.h"
#include "simcore/simulation.h"

namespace conscale {

struct FaultInjectorStats {
  std::uint64_t crashes_injected = 0;
  /// Crash events whose ordinal had no running VM at injection time (e.g.
  /// the tier had already scaled in). The plan entry is a no-op, counted so
  /// benches can report partial injection instead of hiding it.
  std::uint64_t crashes_missed = 0;
  std::uint64_t interference_windows = 0;
  std::uint64_t boot_jitter_windows = 0;
  std::uint64_t dropout_windows = 0;
};

/// A realized perturbation window, for CSV export and plot shading. Crashes
/// use [at, at + restart_delay) (the outage), or a zero-length window when
/// the crash is permanent.
struct FaultWindow {
  FaultKind kind = FaultKind::kVmCrash;
  SimTime start = 0.0;
  SimTime end = 0.0;
  std::string tier;  ///< resolved tier name; empty = system-wide
};

class FaultInjector {
 public:
  /// `warehouse` may be null when the run has no metrics layer — then
  /// kMonitoringDropout events are invalid and arm() throws on them.
  /// The plan's tier selectors are resolved against `system` immediately,
  /// so a plan naming a nonexistent tier fails at construction.
  FaultInjector(Simulation& sim, TierSystem& system,
                MetricsWarehouse* warehouse, FaultPlan plan,
                const RunContext* context = nullptr);

  /// Schedules every event of the plan. Call once, before the run starts.
  void arm();

  const FaultPlan& plan() const { return plan_; }
  const FaultInjectorStats& stats() const { return stats_; }
  const std::vector<FaultWindow>& windows() const { return windows_; }

 private:
  std::size_t resolve_tier(const FaultEvent& event) const;
  void arm_crash(const FaultEvent& event, std::size_t tier_index);
  void arm_interference(const FaultEvent& event, std::size_t tier_index);
  void arm_boot_jitter(const FaultEvent& event, std::size_t tier_index);
  void arm_dropout(const FaultEvent& event);

  Simulation& sim_;
  TierSystem& system_;
  MetricsWarehouse* warehouse_;
  const RunContext* ctx_;
  FaultPlan plan_;
  FaultInjectorStats stats_;
  std::vector<FaultWindow> windows_;
  bool armed_ = false;
};

}  // namespace conscale
