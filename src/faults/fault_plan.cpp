#include "faults/fault_plan.h"

#include <sstream>
#include <stdexcept>

namespace conscale {

std::string to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kVmCrash:
      return "crash";
    case FaultKind::kCpuInterference:
      return "cpu";
    case FaultKind::kBootJitter:
      return "boot";
    case FaultKind::kMonitoringDropout:
      return "drop";
  }
  return "?";
}

namespace {

[[noreturn]] void fail(const std::string& entry, const std::string& why) {
  throw std::invalid_argument("FaultPlan: " + why + " in entry '" + entry +
                              "'");
}

double parse_number(const std::string& entry, const std::string& key,
                    const std::string& value) {
  std::size_t consumed = 0;
  double out = 0.0;
  try {
    out = std::stod(value, &consumed);
  } catch (const std::exception&) {
    fail(entry, "malformed value for '" + key + "'");
  }
  if (consumed != value.size()) {
    fail(entry, "malformed value for '" + key + "'");
  }
  return out;
}

std::string format_number(double value) {
  std::ostringstream out;
  out << value;
  return out.str();
}

std::vector<std::string> tokenize(const std::string& entry) {
  std::vector<std::string> tokens;
  std::istringstream stream(entry);
  std::string token;
  while (stream >> token) tokens.push_back(token);
  return tokens;
}

FaultEvent parse_entry(const std::string& entry) {
  const std::vector<std::string> tokens = tokenize(entry);
  FaultEvent event;
  const std::string& kind = tokens.front();
  if (kind == "crash") {
    event.kind = FaultKind::kVmCrash;
  } else if (kind == "cpu") {
    event.kind = FaultKind::kCpuInterference;
  } else if (kind == "boot") {
    event.kind = FaultKind::kBootJitter;
  } else if (kind == "drop") {
    event.kind = FaultKind::kMonitoringDropout;
  } else {
    fail(entry, "unknown fault kind '" + kind + "'");
  }

  bool saw_t = false, saw_dur = false, saw_factor = false, saw_vm = false;
  for (std::size_t i = 1; i < tokens.size(); ++i) {
    const std::string& token = tokens[i];
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= token.size()) {
      fail(entry, "expected key=value, got '" + token + "'");
    }
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    if (key == "t") {
      event.at = parse_number(entry, key, value);
      saw_t = true;
    } else if (key == "dur") {
      event.duration = parse_number(entry, key, value);
      saw_dur = true;
    } else if (key == "tier") {
      event.tier = value;
    } else if (key == "vm") {
      if (value == "all") {
        event.all_vms = true;
      } else {
        const double ordinal = parse_number(entry, key, value);
        if (ordinal < 0.0) fail(entry, "vm ordinal must be >= 0");
        event.vm_ordinal = static_cast<std::size_t>(ordinal);
      }
      saw_vm = true;
    } else if (key == "factor") {
      event.factor = parse_number(entry, key, value);
      saw_factor = true;
    } else if (key == "restart") {
      event.restart_delay = parse_number(entry, key, value);
    } else {
      fail(entry, "unknown key '" + key + "'");
    }
  }

  if (!saw_t) fail(entry, "missing required key 't'");
  if (event.at < 0.0) fail(entry, "'t' must be >= 0");
  switch (event.kind) {
    case FaultKind::kVmCrash:
      if (event.tier.empty()) fail(entry, "crash requires 'tier'");
      if (event.all_vms) fail(entry, "crash targets one VM, not vm=all");
      break;
    case FaultKind::kCpuInterference:
      if (event.tier.empty()) fail(entry, "cpu requires 'tier'");
      if (!saw_dur || event.duration <= 0.0) {
        fail(entry, "cpu requires 'dur' > 0");
      }
      if (!saw_factor || event.factor <= 0.0) {
        fail(entry, "cpu requires 'factor' > 0");
      }
      if (!saw_vm) fail(entry, "cpu requires 'vm' (ordinal or all)");
      break;
    case FaultKind::kBootJitter:
      if (!saw_dur || event.duration <= 0.0) {
        fail(entry, "boot requires 'dur' > 0");
      }
      if (!saw_factor || event.factor <= 0.0) {
        fail(entry, "boot requires 'factor' > 0");
      }
      break;
    case FaultKind::kMonitoringDropout:
      if (!saw_dur || event.duration <= 0.0) {
        fail(entry, "drop requires 'dur' > 0");
      }
      break;
  }
  return event;
}

}  // namespace

std::string FaultEvent::to_line() const {
  std::ostringstream out;
  out << to_string(kind) << " t=" << format_number(at);
  switch (kind) {
    case FaultKind::kVmCrash:
      out << " tier=" << tier << " vm=" << vm_ordinal;
      if (restart_delay >= 0.0) {
        out << " restart=" << format_number(restart_delay);
      }
      break;
    case FaultKind::kCpuInterference:
      out << " dur=" << format_number(duration) << " tier=" << tier << " vm="
          << (all_vms ? std::string("all") : std::to_string(vm_ordinal))
          << " factor=" << format_number(factor);
      break;
    case FaultKind::kBootJitter:
      out << " dur=" << format_number(duration);
      if (!tier.empty()) out << " tier=" << tier;
      out << " factor=" << format_number(factor);
      break;
    case FaultKind::kMonitoringDropout:
      out << " dur=" << format_number(duration);
      break;
  }
  return out.str();
}

FaultPlan FaultPlan::parse(const std::string& text) {
  FaultPlan plan;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream entries(line);
    std::string entry;
    while (std::getline(entries, entry, ';')) {
      if (tokenize(entry).empty()) continue;  // blank / comment-only
      plan.events.push_back(parse_entry(entry));
    }
  }
  return plan;
}

std::string FaultPlan::to_text() const {
  std::string out;
  for (const auto& event : events) {
    out += event.to_line();
    out += '\n';
  }
  return out;
}

}  // namespace conscale
