#include "faults/injector.h"

#include <cctype>
#include <stdexcept>

#include "common/logging.h"

namespace conscale {

namespace {

bool is_all_digits(const std::string& s) {
  if (s.empty()) return false;
  for (const char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

}  // namespace

FaultInjector::FaultInjector(Simulation& sim, TierSystem& system,
                             MetricsWarehouse* warehouse, FaultPlan plan,
                             const RunContext* context)
    : sim_(sim), system_(system), warehouse_(warehouse),
      ctx_(context ? context : &RunContext::global()),
      plan_(std::move(plan)) {
  // Validate eagerly: a plan naming a tier this topology does not have, or
  // a dropout without a warehouse, is a configuration error — failing at
  // construction beats silently skipping the injection mid-run.
  for (const auto& event : plan_.events) {
    if (event.kind == FaultKind::kMonitoringDropout) {
      if (warehouse_ == nullptr) {
        throw std::invalid_argument(
            "FaultInjector: plan has a monitoring dropout but no metrics "
            "warehouse is attached");
      }
      continue;
    }
    resolve_tier(event);
  }
}

std::size_t FaultInjector::resolve_tier(const FaultEvent& event) const {
  const std::string& tier = event.tier;
  if (tier.empty()) {
    if (event.kind == FaultKind::kBootJitter) return system_.tier_count();
    throw std::invalid_argument("FaultInjector: '" + to_string(event.kind) +
                                "' event requires a tier");
  }
  if (is_all_digits(tier)) {
    const std::size_t index = std::stoul(tier);
    if (index >= system_.tier_count()) {
      throw std::invalid_argument("FaultInjector: tier index " + tier +
                                  " out of range (system has " +
                                  std::to_string(system_.tier_count()) +
                                  " tiers)");
    }
    return index;
  }
  std::size_t index = system_.tier_index_by_name(tier);
  if (index < system_.tier_count()) return index;
  // RUBBoS aliases: front / middle / back of the 3-tier chain.
  if (tier == "web") {
    index = 0;
  } else if (tier == "app") {
    index = 1;
  } else if (tier == "db") {
    index = 2;
  } else {
    throw std::invalid_argument("FaultInjector: unknown tier '" + tier + "'");
  }
  if (index >= system_.tier_count()) {
    throw std::invalid_argument("FaultInjector: alias '" + tier +
                                "' needs a deeper topology");
  }
  return index;
}

void FaultInjector::arm() {
  if (armed_) {
    throw std::logic_error("FaultInjector: arm() called twice");
  }
  armed_ = true;
  for (const auto& event : plan_.events) {
    switch (event.kind) {
      case FaultKind::kVmCrash:
        arm_crash(event, resolve_tier(event));
        break;
      case FaultKind::kCpuInterference:
        arm_interference(event, resolve_tier(event));
        break;
      case FaultKind::kBootJitter:
        arm_boot_jitter(event, resolve_tier(event));
        break;
      case FaultKind::kMonitoringDropout:
        arm_dropout(event);
        break;
    }
  }
}

void FaultInjector::arm_crash(const FaultEvent& event,
                              std::size_t tier_index) {
  const std::string tier_name = system_.tier(tier_index).name();
  windows_.push_back(
      {FaultKind::kVmCrash, event.at,
       event.restart_delay >= 0.0 ? event.at + event.restart_delay : event.at,
       tier_name});
  sim_.schedule_at(event.at, [this, event, tier_index] {
    TierGroup& tier = system_.tier(tier_index);
    if (tier.inject_vm_crash(event.vm_ordinal, event.restart_delay)) {
      ++stats_.crashes_injected;
    } else {
      ++stats_.crashes_missed;
      CS_RUN_LOG_INFO(*ctx_)
          << "fault: crash on " << tier.name() << " vm#" << event.vm_ordinal
          << " missed at t=" << sim_.now() << " (no such running VM)";
    }
  });
}

void FaultInjector::arm_interference(const FaultEvent& event,
                                     std::size_t tier_index) {
  const std::string tier_name = system_.tier(tier_index).name();
  windows_.push_back({FaultKind::kCpuInterference, event.at,
                      event.at + event.duration, tier_name});
  const std::size_t selector =
      event.all_vms ? TierGroup::kAllVms : event.vm_ordinal;
  sim_.schedule_at(event.at, [this, event, tier_index, selector] {
    TierGroup& tier = system_.tier(tier_index);
    const std::vector<Server*> touched =
        tier.set_vm_cpu_speed_factor(selector, event.factor);
    ++stats_.interference_windows;
    CS_RUN_LOG_INFO(*ctx_) << "fault: cpu interference x" << event.factor
                           << " on " << touched.size() << " VM(s) of "
                           << tier.name() << " at t=" << sim_.now();
    // Windows are assumed non-overlapping per tier: speeds restore to the
    // tier's nominal template value, not to a saved stack of factors.
    sim_.schedule_after(event.duration, [this, event, tier_index, touched] {
      TierGroup& tier2 = system_.tier(tier_index);
      if (event.all_vms) {
        // Also restores VMs born inside the window and clears the factor
        // applied to future VMs.
        tier2.set_vm_cpu_speed_factor(TierGroup::kAllVms, 1.0);
      } else {
        const double nominal = tier2.config().server_template.speed;
        for (Server* server : touched) server->set_cpu_speed(nominal);
      }
      CS_RUN_LOG_INFO(*ctx_) << "fault: cpu interference on " << tier2.name()
                             << " ended at t=" << sim_.now();
    });
  });
}

void FaultInjector::arm_boot_jitter(const FaultEvent& event,
                                    std::size_t tier_index) {
  const bool all_tiers = tier_index >= system_.tier_count();
  windows_.push_back({FaultKind::kBootJitter, event.at,
                      event.at + event.duration,
                      all_tiers ? std::string()
                                : system_.tier(tier_index).name()});
  auto apply = [this, tier_index, all_tiers](double factor) {
    if (all_tiers) {
      for (std::size_t i = 0; i < system_.tier_count(); ++i) {
        system_.tier(i).set_prep_delay_factor(factor);
      }
    } else {
      system_.tier(tier_index).set_prep_delay_factor(factor);
    }
  };
  sim_.schedule_at(event.at, [this, event, apply] {
    ++stats_.boot_jitter_windows;
    apply(event.factor);
    sim_.schedule_after(event.duration, [apply] { apply(1.0); });
  });
}

void FaultInjector::arm_dropout(const FaultEvent& event) {
  windows_.push_back({FaultKind::kMonitoringDropout, event.at,
                      event.at + event.duration, std::string()});
  sim_.schedule_at(event.at, [this, event] {
    ++stats_.dropout_windows;
    warehouse_->set_ingestion_enabled(false);
    CS_RUN_LOG_INFO(*ctx_) << "fault: monitoring dropout started at t="
                           << sim_.now() << " for " << event.duration << "s";
    sim_.schedule_after(event.duration, [this] {
      warehouse_->set_ingestion_enabled(true);
      CS_RUN_LOG_INFO(*ctx_)
          << "fault: monitoring dropout ended at t=" << sim_.now()
          << " (dropped " << warehouse_->dropped_samples()
          << " samples so far)";
    });
  });
}

}  // namespace conscale
