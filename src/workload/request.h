// Request model for the simulated n-tier application.
//
// A request visits tiers in a chain (web -> app -> db in the RUBBoS-style
// default). At each tier it consumes resources according to that tier's
// PhaseDemand:
//
//   cpu_pre     CPU work before any downstream interaction (parsing,
//               dispatch, query planning...)
//   disk        disk service demand (FCFS station; dominant for the
//               read/write-mix I/O-intensive mode)
//   pure_delay  time the serving thread is held without consuming a modeled
//               resource (network round-trips, protocol handling, driver
//               overhead). This is what separates "concurrency needed to
//               saturate the CPU" from the core count — with demand D and
//               pure delay L, one core saturates around (D+L)/D in-flight
//               requests, which is exactly the paper's Q_lower mechanism.
//   downstream_calls  number of *sequential* synchronous RPCs to the next
//               tier, each holding the local thread (thread-per-request,
//               §III-A) and, where configured, a connection-pool token.
//   cpu_post    CPU work after the downstream replies (result assembly;
//               this is the component that grows with dataset size).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/time_units.h"

namespace conscale {

/// Per-tier resource demands of one request class. All demands are mean
/// values in seconds; actual samples are drawn log-normally with the class's
/// coefficient of variation.
struct PhaseDemand {
  double cpu_pre = 0.0;
  double cpu_post = 0.0;
  double disk = 0.0;
  double pure_delay = 0.0;
  int downstream_calls = 0;

  double total_cpu() const { return cpu_pre + cpu_post; }
};

/// A class of requests (the paper's RUBBoS servlet interactions such as
/// "ViewStory" or "StoreStory"), with per-tier demands.
struct RequestClass {
  std::string name;
  bool is_write = false;
  double weight = 1.0;  ///< relative selection probability in a mix
  double demand_cv = 0.25;  ///< coefficient of variation of sampled demands
  std::vector<PhaseDemand> tiers;  ///< indexed by tier depth (0 = front)
};

/// Identity of one end-to-end request as it flows through the system.
struct RequestContext {
  std::uint64_t id = 0;
  const RequestClass* request_class = nullptr;
  SimTime issued_at = 0.0;
};

/// Terminal fate of a submitted request. `kRejected` is produced by
/// admission control (topology::ServiceGraph) when the system sheds load
/// instead of queueing; rejected requests never enter the service pipeline
/// and are excluded from response-time statistics.
enum class RequestOutcome { kServed, kRejected };

}  // namespace conscale
