// Request mixes: weighted collections of request classes plus the runtime
// knobs the paper varies — workload mode (browse-only CPU-intensive vs
// read/write-mix I/O-intensive, §II-A) and dataset scale (§III-C.2).
#pragma once

#include <vector>

#include "common/rng.h"
#include "workload/request.h"

namespace conscale {

class RequestMix {
 public:
  RequestMix() = default;
  explicit RequestMix(std::vector<RequestClass> classes);

  /// Draws a class according to the weights. The mix must be non-empty.
  const RequestClass& pick(Rng& rng) const;

  const std::vector<RequestClass>& classes() const { return classes_; }
  bool empty() const { return classes_.empty(); }

  /// Scales the app-tier post-processing CPU (result-set assembly) and db
  /// CPU by `factor`, modeling a dataset-size change: a larger dataset means
  /// larger result sets and more per-request computation, which *lowers* the
  /// concurrency needed to saturate the bottleneck CPU (Fig 3b vs 3c,
  /// Fig 7b vs 7e). Factors < 1 model the reduced dataset of Fig 11.
  void apply_dataset_scale(double factor);

  double dataset_scale() const { return dataset_scale_; }

 private:
  std::vector<RequestClass> classes_;
  std::vector<double> cumulative_weights_;
  double dataset_scale_ = 1.0;

  void rebuild_weights();
};

/// Parameters from which the standard RUBBoS-like mixes are built. All times
/// are mean seconds for an unscaled (speed 1.0) core. `work_scale` multiplies
/// every demand (and is compensated by fewer simulated users) so experiments
/// can trade fidelity for speed without moving any concurrency optimum.
struct MixParams {
  double work_scale = 1.0;
  double dataset_scale = 1.0;

  // Web tier (Apache): static content + proxying. Tiny CPU, never the
  // bottleneck in the paper's topologies.
  double web_cpu = 0.10e-3;
  double web_delay = 0.30e-3;

  // App tier (Tomcat): servlet execution. cpu_post carries the dataset-
  // dependent result processing. Calibrated against Fig 3/7:
  // Q_lower ≈ cores × (cpu + delay + downstream wait) / cpu
  //         ≈ (0.6 + 7.0 + 2×2.0) / 0.6 ≈ 20 for 1 core, original dataset;
  // a 1.5× dataset raises cpu_post so Q_lower ≈ 15 (Fig 3c / 7e), and the
  // per-server capacity ≈ 1/0.6 ms ≈ 1.6k req/s matches Fig 3's magnitude.
  double app_cpu_pre = 0.20e-3;
  double app_cpu_post = 0.40e-3;
  double app_delay = 7.0e-3;
  int app_db_queries = 2;

  // DB tier (MySQL): per-query demands. Browse-only queries are CPU-bound;
  // write queries hit the disk. Calibrated so one MySQL VM sustains ~2.3×
  // one Tomcat VM (the paper's 6 000 q/s ≈ 3 000 req/s vs 1 300 req/s):
  // nominal MySQL outruns two Tomcats, but MySQL *degraded by 80-connection
  // over-concurrency* does not — the exact mechanism behind Fig 10's spike
  // when the second Tomcat comes online.
  double db_cpu_browse = 0.13e-3;
  double db_delay = 1.8e-3;
  double db_cpu_write = 0.10e-3;
  double db_disk_write = 0.45e-3;

  double demand_cv = 0.30;
};

/// Browse-only CPU-intensive mode ("ViewStory"-style interactions).
RequestMix make_browse_only_mix(const MixParams& params);

/// Read/write-mix I/O-intensive mode ("StoreStory"-style interactions mixed
/// with browsing); the DB critical resource shifts from CPU to disk.
RequestMix make_read_write_mix(const MixParams& params);

}  // namespace conscale
