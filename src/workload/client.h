// ClientPopulation: the closed-loop workload generator.
//
// The paper's generator simulates a number of concurrent users whose request
// stream follows a Poisson process (§II-A): each simulated user repeatedly
// thinks (exponential think time) and issues one request, waiting for the
// response before thinking again. The population size tracks a WorkloadTrace
// (the six bursty shapes of Fig 9); the profiling experiments of Fig 3/7 use
// a constant population with zero think time to pin the processing
// concurrency exactly.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>

#include "common/histogram.h"
#include "common/rng.h"
#include "simcore/simulation.h"
#include "workload/mix.h"
#include "workload/request.h"
#include "workload/trace.h"

namespace conscale {

class ClientPopulation {
 public:
  /// The system entry point: deliver `ctx` and invoke the continuation when
  /// the response returns.
  using SubmitFn = std::function<void(const RequestContext&,
                                      std::function<void()> on_response)>;
  /// Outcome-aware entry point: the continuation reports whether the request
  /// was served or shed by admission control (topology::ServiceGraph).
  using OutcomeSubmitFn =
      std::function<void(const RequestContext&,
                         std::function<void(RequestOutcome)> on_response)>;
  /// Observer of completed end-to-end requests (issued time, response time).
  using CompletionHook =
      std::function<void(SimTime issued, double rt, const RequestClass&)>;
  /// Observer of shed requests (fires at the rejection instant).
  using RejectionHook = std::function<void(SimTime rejected_at)>;

  struct Params {
    double think_time_mean = 1.5;  ///< seconds; 0 = closed-loop stress mode
    SimDuration adjust_period = 0.5;  ///< how often population tracks trace
    std::uint64_t seed = 7;
  };

  ClientPopulation(Simulation& sim, const WorkloadTrace& trace,
                   const RequestMix& mix, SubmitFn submit, Params params);
  /// Outcome-aware variant: systems with admission control report
  /// RequestOutcome::kRejected for shed requests. A rejected user goes back
  /// to thinking (retry-after-backoff behavior); the request counts toward
  /// requests_issued()/requests_rejected() but not the RT histogram.
  ClientPopulation(Simulation& sim, const WorkloadTrace& trace,
                   const RequestMix& mix, OutcomeSubmitFn submit,
                   Params params);
  ~ClientPopulation();
  ClientPopulation(const ClientPopulation&) = delete;
  ClientPopulation& operator=(const ClientPopulation&) = delete;

  void set_completion_hook(CompletionHook hook) { hook_ = std::move(hook); }
  void set_rejection_hook(RejectionHook hook) {
    rejection_hook_ = std::move(hook);
  }

  /// Swap the request mix at runtime (workload-type change experiments).
  void set_mix(const RequestMix& mix) { mix_ = &mix; }

  std::size_t active_users() const { return users_.size(); }
  std::uint64_t requests_issued() const { return issued_; }
  std::uint64_t requests_completed() const { return completed_; }
  /// Requests shed by admission control (always zero for plain SubmitFn).
  std::uint64_t requests_rejected() const { return rejected_; }
  /// End-to-end (client-perceived) response times of the whole run.
  const LogHistogram& response_times() const { return rt_histogram_; }

 private:
  struct User {
    bool in_flight = false;
    bool retired = false;
    EventHandle think_event;
  };

  void adjust_population(SimTime now);
  void spawn_user();
  void user_think(std::uint64_t id);
  void user_submit(std::uint64_t id);
  bool maybe_retire(std::uint64_t id);

  Simulation& sim_;
  const WorkloadTrace& trace_;
  const RequestMix* mix_;
  OutcomeSubmitFn submit_;
  Params params_;
  Rng rng_;
  CompletionHook hook_;
  RejectionHook rejection_hook_;

  // Determinism audit (DESIGN.md §8): keyed access only on the run path;
  // the destructor's cancel sweep is the single iteration, waived in the
  // .cpp with an order-independence proof.
  std::unordered_map<std::uint64_t, User> users_;
  std::uint64_t next_user_id_ = 1;
  std::uint64_t next_request_id_ = 1;
  std::size_t retire_pending_ = 0;
  std::uint64_t issued_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t rejected_ = 0;
  LogHistogram rt_histogram_;
  std::unique_ptr<PeriodicTask> adjust_task_;
};

}  // namespace conscale
