#include "workload/session_shard.h"

#include <algorithm>
#include <cmath>

namespace conscale {

SessionShard::SessionShard(lanes::LaneEngine& engine, std::size_t lane,
                           std::size_t shard_index, std::size_t shard_count,
                           const WorkloadTrace& trace, const RequestMix& mix,
                           ShardGateway& gateway, std::size_t gateway_lane,
                           Params params)
    : LaneActor(engine, lane), shard_index_(shard_index),
      shard_count_(std::max<std::size_t>(shard_count, 1)), trace_(trace),
      mix_(mix), gateway_(gateway), gateway_lane_(gateway_lane),
      params_(params), rng_(params.seed) {
  adjust_population(sim().now());
  arm_adjust();
}

// Keyed periodic tracking loop (PeriodicTask would draw plain-event
// sequence numbers, which are not partition-independent).
void SessionShard::arm_adjust() {
  schedule_after(params_.adjust_period, [this] {
    adjust_population(sim().now());
    arm_adjust();
  });
}

std::uint64_t SessionShard::share_of(std::uint64_t total) const {
  const auto s = static_cast<std::uint64_t>(shard_count_);
  const auto i = static_cast<std::uint64_t>(shard_index_);
  return total * (i + 1) / s - total * i / s;
}

void SessionShard::adjust_population(SimTime now) {
  const auto total = static_cast<std::uint64_t>(
      std::llround(std::max(trace_.users_at(now), 0.0)));
  const std::size_t target = static_cast<std::size_t>(share_of(total));
  const std::size_t active = active_users();
  const std::size_t alive = active - std::min(retire_pending_, active);
  if (target > alive) {
    const std::size_t to_spawn = target - alive;
    const std::size_t cancelled = std::min(retire_pending_, to_spawn);
    retire_pending_ -= cancelled;
    for (std::size_t i = 0; i < to_spawn - cancelled; ++i) spawn_user();
  } else if (target < alive) {
    retire_pending_ += alive - target;
  }
}

void SessionShard::spawn_user() {
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(users_.size());
    users_.emplace_back();
  }
  users_[slot] = User{};
  users_[slot].live = true;
  user_think(slot);
}

void SessionShard::user_think(std::uint32_t slot) {
  if (maybe_retire(slot)) return;
  const double think = params_.think_time_mean > 0.0
                           ? rng_.exponential(params_.think_time_mean)
                           : 0.0;
  users_[slot].think_event =
      schedule_after(think, [this, slot] { user_submit(slot); });
}

void SessionShard::user_submit(std::uint32_t slot) {
  if (maybe_retire(slot)) return;
  User& user = users_[slot];
  user.in_flight = true;
  user.issued_at = sim().now();

  RequestContext ctx;
  // Request ids carry the shard in the high bits so they stay globally
  // unique and partition-independent without any cross-shard coordination.
  ctx.id = (static_cast<std::uint64_t>(shard_index_ + 1) << 40) |
           next_request_id_++;
  ctx.request_class = &mix_.pick(rng_);
  ctx.issued_at = user.issued_at;
  ++issued_;

  post(gateway_lane_, params_.net_delay,
       [gateway = &gateway_, ctx, this, slot] {
         gateway->on_request(ctx, *this, slot);
       });
}

void SessionShard::on_reply(std::uint32_t user_slot, RequestOutcome outcome) {
  User& user = users_[user_slot];
  user.in_flight = false;
  if (outcome == RequestOutcome::kServed) {
    ++completed_;
    rt_histogram_.add(sim().now() - user.issued_at);
  } else {
    ++rejected_;
  }
  user_think(user_slot);
}

bool SessionShard::maybe_retire(std::uint32_t slot) {
  if (retire_pending_ == 0) return false;
  --retire_pending_;
  User& user = users_[slot];
  user.think_event.cancel();
  user.live = false;
  free_slots_.push_back(slot);
  return true;
}

}  // namespace conscale
