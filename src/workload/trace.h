// The six realistic bursty workload traces of Fig 9, as synthetic,
// shape-faithful reconstructions (the raw traces are proprietary; the
// categories are from Gandhi et al., "AutoScale", TOCS 2012):
//
//   large_variations  big repeated swings around a mid level
//   quickly_varying   fast oscillation between low and high
//   slowly_varying    one broad hump rising and falling slowly
//   big_spike         steady base with one sudden tall spike
//   dual_phase        low plateau then a step to a high plateau
//   steep_tri_phase   three steep steps up, then back down
//
// A trace maps time -> number of concurrent users (the closed-loop
// population size); the paper runs 12 minutes with up to 7 500 users.
#pragma once

#include <string>
#include <vector>

#include "common/rng.h"
#include "common/time_units.h"

namespace conscale {

enum class TraceKind {
  kLargeVariations,
  kQuicklyVarying,
  kSlowlyVarying,
  kBigSpike,
  kDualPhase,
  kSteepTriPhase,
};

std::string to_string(TraceKind kind);
const std::vector<TraceKind>& all_trace_kinds();

struct TraceParams {
  SimDuration duration = 720.0;  ///< 12 minutes, as in §V
  double max_users = 7500.0;     ///< peak concurrent users
  double min_users_fraction = 0.12;  ///< floor as a fraction of max
  double noise_fraction = 0.03;  ///< multiplicative jitter per sample
  SimDuration sample_period = 1.0;
  std::uint64_t seed = 42;
};

/// A sampled users-over-time curve with interpolation.
class WorkloadTrace {
 public:
  WorkloadTrace(std::string name, SimDuration sample_period,
                std::vector<double> samples);

  /// Users at time `t` (linear interpolation; clamped at the ends).
  double users_at(SimTime t) const;

  SimDuration duration() const {
    return sample_period_ * static_cast<double>(samples_.size() - 1);
  }
  const std::string& name() const { return name_; }
  const std::vector<double>& samples() const { return samples_; }
  SimDuration sample_period() const { return sample_period_; }
  double peak_users() const;

 private:
  std::string name_;
  SimDuration sample_period_;
  std::vector<double> samples_;
};

/// Builds the requested trace shape.
WorkloadTrace make_trace(TraceKind kind, const TraceParams& params);

/// Flat trace (used by profiling runs and tests).
WorkloadTrace make_constant_trace(double users, SimDuration duration,
                                  SimDuration sample_period = 1.0);

/// Symmetric triangle ramp lo -> hi -> lo, used by the scatter-collection
/// profiling runs to sweep a server through its whole concurrency range.
WorkloadTrace make_ramp_trace(double lo_users, double hi_users,
                              SimDuration duration,
                              SimDuration sample_period = 1.0);

}  // namespace conscale
