// SessionPopulation: a closed-loop user population whose users navigate a
// SessionModel instead of drawing request classes independently. Same
// trace-tracking semantics as ClientPopulation; sessions give the request
// stream its realistic short-range correlation.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <unordered_map>

#include "common/histogram.h"
#include "common/rng.h"
#include "simcore/simulation.h"
#include "workload/mix.h"
#include "workload/request.h"
#include "workload/session.h"
#include "workload/trace.h"

namespace conscale {

class SessionPopulation {
 public:
  using SubmitFn = std::function<void(const RequestContext&,
                                      std::function<void()> on_response)>;

  struct Params {
    SimDuration adjust_period = 0.5;
    /// Pause between a session ending and the same user starting the next
    /// one (reading something else, coming back later).
    double inter_session_gap_mean = 5.0;
    std::uint64_t seed = 7;
  };

  /// Observer of completed end-to-end requests (parity with
  /// ClientPopulation so monitoring hooks interchange).
  using CompletionHook =
      std::function<void(SimTime issued, double rt, const RequestClass&)>;

  SessionPopulation(Simulation& sim, const WorkloadTrace& trace,
                    const RequestMix& mix, const SessionModel& model,
                    SubmitFn submit, Params params);
  ~SessionPopulation();
  SessionPopulation(const SessionPopulation&) = delete;
  SessionPopulation& operator=(const SessionPopulation&) = delete;

  void set_completion_hook(CompletionHook hook) { hook_ = std::move(hook); }

  std::size_t active_users() const { return users_.size(); }
  std::uint64_t requests_issued() const { return issued_; }
  std::uint64_t requests_completed() const { return completed_; }
  std::uint64_t sessions_started() const { return sessions_started_; }
  std::uint64_t sessions_finished() const { return sessions_finished_; }
  const LogHistogram& response_times() const { return rt_histogram_; }
  /// Completed requests per session state name (distribution checks).
  const std::map<std::string, std::uint64_t>& per_state_completions() const {
    return per_state_;
  }

 private:
  struct User {
    std::size_t state = 0;
    bool in_session = false;
    EventHandle pending;
  };

  void adjust_population(SimTime now);
  void spawn_user();
  bool maybe_retire(std::uint64_t id);
  void begin_session(std::uint64_t id);
  void issue(std::uint64_t id);
  void after_response(std::uint64_t id);

  Simulation& sim_;
  const WorkloadTrace& trace_;
  const RequestMix& mix_;
  const SessionModel& model_;
  SubmitFn submit_;
  Params params_;
  Rng rng_;

  // Determinism audit (DESIGN.md §8): users_ is accessed by key everywhere
  // on the run path (spawn/retire/issue via user id); the single iteration
  // is the destructor's cancel sweep, waived in the .cpp with an
  // order-independence proof. Retirement picks the user whose event fires
  // next, not a hash-order victim.
  std::unordered_map<std::uint64_t, User> users_;
  std::uint64_t next_user_id_ = 1;
  std::uint64_t next_request_id_ = 1;
  std::size_t retire_pending_ = 0;
  std::uint64_t issued_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t sessions_started_ = 0;
  std::uint64_t sessions_finished_ = 0;
  LogHistogram rt_histogram_;
  std::map<std::string, std::uint64_t> per_state_;
  CompletionHook hook_;
  std::unique_ptr<PeriodicTask> adjust_task_;
};

}  // namespace conscale
