// Trace persistence and composition. The six built-in shapes are synthetic;
// real deployments replay measured traces — these helpers load/save traces
// as two-column CSV (t_seconds, users) and provide the transforms needed to
// adapt a recorded trace to an experiment (rescale peaks, stretch time,
// splice phases, add jitter).
#pragma once

#include <string>

#include "workload/trace.h"

namespace conscale {

/// Writes "t,users" rows (header included).
void save_trace_csv(const WorkloadTrace& trace, const std::string& path);

/// Reads a trace written by save_trace_csv (or any two-column CSV with a
/// header). Samples must be evenly spaced; the period is inferred from the
/// first two rows. Throws std::runtime_error on malformed input.
WorkloadTrace load_trace_csv(const std::string& path,
                             const std::string& name = "loaded");

// ---- transforms (all pure: return a new trace) ----

/// Multiplies every sample by `factor`.
WorkloadTrace scale_users(const WorkloadTrace& trace, double factor);

/// Rescales the peak to exactly `peak_users`, preserving shape.
WorkloadTrace normalize_peak(const WorkloadTrace& trace, double peak_users);

/// Stretches (factor > 1) or compresses the time axis.
WorkloadTrace stretch_time(const WorkloadTrace& trace, double factor);

/// Plays `first` then `second` (second's first sample follows first's last).
WorkloadTrace concat(const WorkloadTrace& first, const WorkloadTrace& second);

/// Multiplicative Gaussian jitter per sample, clamped at zero.
WorkloadTrace add_noise(const WorkloadTrace& trace, double fraction,
                        std::uint64_t seed);

/// Clamps every sample into [lo, hi].
WorkloadTrace clamp_users(const WorkloadTrace& trace, double lo, double hi);

}  // namespace conscale
