#include "workload/open_loop.h"

#include <algorithm>

namespace conscale {

OpenLoopGenerator::OpenLoopGenerator(Simulation& sim,
                                     const WorkloadTrace& rate_trace,
                                     const RequestMix& mix, SubmitFn submit,
                                     Params params)
    : sim_(sim), rate_trace_(rate_trace), mix_(mix),
      submit_(std::move(submit)), rng_(params.seed),
      rate_max_(rate_trace.peak_users()) {
  if (rate_max_ <= 0.0) {
    running_ = false;
    return;
  }
  schedule_next();
}

OpenLoopGenerator::~OpenLoopGenerator() { stop(); }

void OpenLoopGenerator::stop() {
  running_ = false;
  next_.cancel();
}

void OpenLoopGenerator::schedule_next() {
  if (!running_) return;
  const double gap = rng_.exponential(1.0 / rate_max_);
  next_ = sim_.schedule_after(gap, [this] { arrival(); });
}

void OpenLoopGenerator::arrival() {
  if (!running_) return;
  const SimTime now = sim_.now();
  if (now > rate_trace_.duration()) {
    running_ = false;
    return;
  }
  // Thinning: accept this candidate with probability rate(t) / rate_max.
  const double rate = std::max(rate_trace_.users_at(now), 0.0);
  if (rng_.uniform() * rate_max_ < rate) {
    RequestContext ctx;
    ctx.id = next_request_id_++;
    ctx.request_class = &mix_.pick(rng_);
    ctx.issued_at = now;
    ++issued_;
    submit_(ctx, [this, ctx] {
      ++completed_;
      rt_histogram_.add(sim_.now() - ctx.issued_at);
    });
  }
  schedule_next();
}

}  // namespace conscale
