// Session model: Markov-chain navigation between interaction types, the way
// RUBBoS actually drives its 24 servlets (a user lands on the front page,
// browses categories, opens stories, sometimes posts a comment, eventually
// leaves). The flat RequestMix draws classes i.i.d.; sessions introduce the
// short-range correlation real web traffic has — bursts of cheap browsing
// punctuated by expensive searches/writes — which widens the concurrency
// excursions the SCT model gets to observe.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "workload/mix.h"

namespace conscale {

class SessionModel {
 public:
  struct State {
    std::string name;
    std::size_t class_index = 0;   ///< which RequestMix class this state issues
    double think_mean = 1.5;       ///< think time after the response [s]
    /// Unnormalized transition weights to every state (indexed like
    /// states()); leaving the site is `exit_weight`.
    std::vector<double> transitions;
    double exit_weight = 0.0;
  };

  /// `entry_weights` picks the landing state. Throws std::invalid_argument
  /// on inconsistent shapes or all-zero weight rows.
  SessionModel(std::vector<State> states, std::vector<double> entry_weights);

  /// Index of the landing state for a new session.
  std::size_t pick_entry(Rng& rng) const;

  /// Next state after `current`, or nullopt when the session ends.
  std::optional<std::size_t> next(std::size_t current, Rng& rng) const;

  const std::vector<State>& states() const { return states_; }

  /// Expected session length (number of requests) from the chain's
  /// fundamental matrix — handy for capacity math and asserted in tests.
  double expected_session_length() const;

  /// Stationary visit fractions per state (long-run share of requests),
  /// computed by power iteration over the visit-ratio equations.
  std::vector<double> visit_fractions() const;

  /// A RUBBoS-like browsing session over the classes of `mix` (which must
  /// be one of the standard mixes: classes are matched by name, falling
  /// back to index 0). Shape: land on a story or category listing, mostly
  /// keep browsing, occasionally search (expensive), leave after ~8 pages.
  static SessionModel rubbos_browse(const RequestMix& mix);

 private:
  std::vector<State> states_;
  std::vector<double> entry_weights_;
  double entry_total_ = 0.0;
};

}  // namespace conscale
