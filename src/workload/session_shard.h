// SessionShard: one partition of a lane-sharded closed-loop session
// population (DESIGN.md §6.6). Semantics mirror ClientPopulation — each
// session thinks (exponential), issues one request, and waits for the reply
// before thinking again, while the shard's population tracks its integer
// share of the WorkloadTrace — but every interaction with the serving
// system crosses a lane boundary: requests travel to a ShardGateway on the
// system lane with the client<->frontend network latency, and replies
// travel back the same way. That latency is the model's natural lookahead,
// which is what lets S shards run on K lanes in parallel (simcore/lanes/).
//
// Determinism: the shard is a LaneActor — think timers and posts carry the
// shard's canonical (stream, seq) keys, the RNG is shard-local, and the
// shard's share of the trace depends only on (shard_index, shard_count).
// Nothing observes the lane count, so lanes=1 and lanes=K replay the exact
// same session histories.
#pragma once

#include <cstdint>
#include <vector>

#include "common/histogram.h"
#include "common/rng.h"
#include "simcore/lanes/actor.h"
#include "workload/mix.h"
#include "workload/request.h"
#include "workload/trace.h"

namespace conscale {

class SessionShard;

/// The system-lane side of the shard protocol (cluster/lane_gateway.h
/// implements it). `on_request` executes on the gateway's lane at the
/// request's arrival instant; the gateway replies with a posted message
/// that invokes SessionShard::on_reply back on the shard's lane.
class ShardGateway {
 public:
  virtual ~ShardGateway() = default;
  virtual void on_request(const RequestContext& ctx, SessionShard& from,
                          std::uint32_t user_slot) = 0;
};

class SessionShard final : public lanes::LaneActor {
 public:
  struct Params {
    double think_time_mean = 1.5;  ///< seconds; 0 = closed-loop stress mode
    SimDuration adjust_period = 0.5;  ///< trace-tracking cadence
    std::uint64_t seed = 7;           ///< shard-local RNG seed
    /// Client<->frontend one-way network latency. Must be at least the
    /// engine's lookahead window (the engine enforces it at every barrier).
    SimDuration net_delay = 0.05;
  };

  SessionShard(lanes::LaneEngine& engine, std::size_t lane,
               std::size_t shard_index, std::size_t shard_count,
               const WorkloadTrace& trace, const RequestMix& mix,
               ShardGateway& gateway, std::size_t gateway_lane, Params params);
  SessionShard(const SessionShard&) = delete;
  SessionShard& operator=(const SessionShard&) = delete;

  /// Protocol entry: the gateway's reply, executing on this shard's lane at
  /// the client-perceived response instant.
  void on_reply(std::uint32_t user_slot, RequestOutcome outcome);

  std::size_t shard_index() const { return shard_index_; }
  /// Sessions currently alive on this shard (including those marked to
  /// retire at their next activity, mirroring ClientPopulation).
  std::size_t active_users() const {
    return users_.size() - free_slots_.size();
  }
  std::uint64_t requests_issued() const { return issued_; }
  std::uint64_t requests_completed() const { return completed_; }
  std::uint64_t requests_rejected() const { return rejected_; }
  /// Client-perceived response times (network latency both ways included).
  const LogHistogram& response_times() const { return rt_histogram_; }

 private:
  struct User {
    bool live = false;
    bool in_flight = false;
    SimTime issued_at = 0.0;
    EventHandle think_event;
  };

  /// This shard's integer share of `total` sessions: contiguous rounding
  /// partition — shard i owns [total*i/S, total*(i+1)/S), so the shares sum
  /// to `total` exactly and depend only on (i, S).
  std::uint64_t share_of(std::uint64_t total) const;

  void arm_adjust();
  void adjust_population(SimTime now);
  void spawn_user();
  void user_think(std::uint32_t slot);
  void user_submit(std::uint32_t slot);
  bool maybe_retire(std::uint32_t slot);

  std::size_t shard_index_;
  std::size_t shard_count_;
  const WorkloadTrace& trace_;
  const RequestMix& mix_;
  ShardGateway& gateway_;
  std::size_t gateway_lane_;
  Params params_;
  Rng rng_;

  std::vector<User> users_;
  std::vector<std::uint32_t> free_slots_;
  std::size_t retire_pending_ = 0;
  std::uint64_t next_request_id_ = 1;
  std::uint64_t issued_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t rejected_ = 0;
  LogHistogram rt_histogram_;
};

}  // namespace conscale
