// OpenLoopGenerator: a (possibly time-varying) Poisson arrival process.
//
// The closed-loop populations model finite user pools (arrivals slow down
// when the system slows — self-throttling). An open-loop stream keeps
// arriving regardless, which is the right model for traffic fanned in from
// outside (APIs, upstream services) and the classic way to measure a
// latency-vs-offered-load curve. Time-varying rates are drawn by thinning
// (Lewis & Shedler): candidates at the peak rate, accepted with probability
// rate(t)/rate_max.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "common/histogram.h"
#include "common/rng.h"
#include "simcore/simulation.h"
#include "workload/mix.h"
#include "workload/request.h"
#include "workload/trace.h"

namespace conscale {

class OpenLoopGenerator {
 public:
  using SubmitFn = std::function<void(const RequestContext&,
                                      std::function<void()> on_response)>;

  struct Params {
    std::uint64_t seed = 7;
  };

  /// `rate_trace` is interpreted as offered load in requests/second over
  /// time (reuse WorkloadTrace; "users" axis = req/s here). Arrivals start
  /// immediately and stop at the end of the trace.
  OpenLoopGenerator(Simulation& sim, const WorkloadTrace& rate_trace,
                    const RequestMix& mix, SubmitFn submit, Params params);
  ~OpenLoopGenerator();
  OpenLoopGenerator(const OpenLoopGenerator&) = delete;
  OpenLoopGenerator& operator=(const OpenLoopGenerator&) = delete;

  void stop();

  std::uint64_t requests_issued() const { return issued_; }
  std::uint64_t requests_completed() const { return completed_; }
  std::uint64_t in_flight() const { return issued_ - completed_; }
  const LogHistogram& response_times() const { return rt_histogram_; }

 private:
  void schedule_next();
  void arrival();

  Simulation& sim_;
  const WorkloadTrace& rate_trace_;
  const RequestMix& mix_;
  SubmitFn submit_;
  Rng rng_;
  double rate_max_;
  bool running_ = true;
  EventHandle next_;
  std::uint64_t next_request_id_ = 1;
  std::uint64_t issued_ = 0;
  std::uint64_t completed_ = 0;
  LogHistogram rt_histogram_;
};

}  // namespace conscale
