#include "workload/trace_io.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/csv.h"
#include "common/rng.h"

namespace conscale {

void save_trace_csv(const WorkloadTrace& trace, const std::string& path) {
  CsvWriter csv(path);
  csv.header({"t", "users"});
  const auto& samples = trace.samples();
  for (std::size_t i = 0; i < samples.size(); ++i) {
    csv.row({static_cast<double>(i) * trace.sample_period(), samples[i]});
  }
}

WorkloadTrace load_trace_csv(const std::string& path,
                             const std::string& name) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_trace_csv: cannot open " + path);
  std::string line;
  if (!std::getline(in, line)) {
    throw std::runtime_error("load_trace_csv: empty file " + path);
  }
  std::vector<double> times;
  std::vector<double> users;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const auto comma = line.find(',');
    if (comma == std::string::npos) {
      throw std::runtime_error("load_trace_csv: malformed row: " + line);
    }
    try {
      times.push_back(std::stod(line.substr(0, comma)));
      users.push_back(std::stod(line.substr(comma + 1)));
    } catch (const std::exception&) {
      throw std::runtime_error("load_trace_csv: non-numeric row: " + line);
    }
  }
  if (users.size() < 2) {
    throw std::runtime_error("load_trace_csv: need at least two samples");
  }
  const double period = times[1] - times[0];
  if (period <= 0.0) {
    throw std::runtime_error("load_trace_csv: non-increasing timestamps");
  }
  for (std::size_t i = 1; i < times.size(); ++i) {
    if (std::abs((times[i] - times[i - 1]) - period) > 1e-6 * period + 1e-9) {
      throw std::runtime_error("load_trace_csv: uneven sample spacing");
    }
  }
  return WorkloadTrace(name, period, std::move(users));
}

WorkloadTrace scale_users(const WorkloadTrace& trace, double factor) {
  std::vector<double> samples = trace.samples();
  for (double& s : samples) s *= factor;
  return WorkloadTrace(trace.name(), trace.sample_period(),
                       std::move(samples));
}

WorkloadTrace normalize_peak(const WorkloadTrace& trace, double peak_users) {
  const double peak = trace.peak_users();
  if (peak <= 0.0) {
    throw std::invalid_argument("normalize_peak: trace peak is zero");
  }
  return scale_users(trace, peak_users / peak);
}

WorkloadTrace stretch_time(const WorkloadTrace& trace, double factor) {
  if (factor <= 0.0) {
    throw std::invalid_argument("stretch_time: factor must be > 0");
  }
  return WorkloadTrace(trace.name(), trace.sample_period() * factor,
                       trace.samples());
}

WorkloadTrace concat(const WorkloadTrace& first, const WorkloadTrace& second) {
  if (std::abs(first.sample_period() - second.sample_period()) > 1e-12) {
    throw std::invalid_argument("concat: sample periods differ");
  }
  std::vector<double> samples = first.samples();
  samples.insert(samples.end(), second.samples().begin(),
                 second.samples().end());
  return WorkloadTrace(first.name() + "+" + second.name(),
                       first.sample_period(), std::move(samples));
}

WorkloadTrace add_noise(const WorkloadTrace& trace, double fraction,
                        std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> samples = trace.samples();
  for (double& s : samples) {
    s = std::max(s * (1.0 + fraction * rng.normal()), 0.0);
  }
  return WorkloadTrace(trace.name(), trace.sample_period(),
                       std::move(samples));
}

WorkloadTrace clamp_users(const WorkloadTrace& trace, double lo, double hi) {
  std::vector<double> samples = trace.samples();
  for (double& s : samples) s = std::clamp(s, lo, hi);
  return WorkloadTrace(trace.name(), trace.sample_period(),
                       std::move(samples));
}

}  // namespace conscale
