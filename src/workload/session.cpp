#include "workload/session.h"

#include <cmath>
#include <stdexcept>

namespace conscale {

SessionModel::SessionModel(std::vector<State> states,
                           std::vector<double> entry_weights)
    : states_(std::move(states)), entry_weights_(std::move(entry_weights)) {
  if (states_.empty()) {
    throw std::invalid_argument("SessionModel: no states");
  }
  if (entry_weights_.size() != states_.size()) {
    throw std::invalid_argument("SessionModel: entry weight shape mismatch");
  }
  for (double w : entry_weights_) {
    if (w < 0.0) throw std::invalid_argument("SessionModel: negative weight");
    entry_total_ += w;
  }
  if (entry_total_ <= 0.0) {
    throw std::invalid_argument("SessionModel: all entry weights zero");
  }
  for (const auto& s : states_) {
    if (s.transitions.size() != states_.size()) {
      throw std::invalid_argument("SessionModel: transition shape mismatch");
    }
    double total = s.exit_weight;
    for (double w : s.transitions) {
      if (w < 0.0) {
        throw std::invalid_argument("SessionModel: negative transition");
      }
      total += w;
    }
    if (total <= 0.0) {
      throw std::invalid_argument("SessionModel: absorbing state '" + s.name +
                                  "' without exit weight");
    }
  }
}

std::size_t SessionModel::pick_entry(Rng& rng) const {
  double target = rng.uniform() * entry_total_;
  for (std::size_t i = 0; i < entry_weights_.size(); ++i) {
    target -= entry_weights_[i];
    if (target < 0.0) return i;
  }
  return entry_weights_.size() - 1;
}

std::optional<std::size_t> SessionModel::next(std::size_t current,
                                              Rng& rng) const {
  const State& s = states_.at(current);
  double total = s.exit_weight;
  for (double w : s.transitions) total += w;
  double target = rng.uniform() * total;
  for (std::size_t i = 0; i < s.transitions.size(); ++i) {
    target -= s.transitions[i];
    if (target < 0.0) return i;
  }
  return std::nullopt;  // exit
}

double SessionModel::expected_session_length() const {
  // Expected visits solve v = e + P^T v where P is the (sub-stochastic)
  // transition matrix and e the entry distribution; iterate to convergence.
  const std::size_t n = states_.size();
  std::vector<double> entry(n);
  for (std::size_t i = 0; i < n; ++i) entry[i] = entry_weights_[i] / entry_total_;
  std::vector<std::vector<double>> p(n, std::vector<double>(n, 0.0));
  for (std::size_t i = 0; i < n; ++i) {
    double total = states_[i].exit_weight;
    for (double w : states_[i].transitions) total += w;
    for (std::size_t j = 0; j < n; ++j) {
      p[i][j] = states_[i].transitions[j] / total;
    }
  }
  std::vector<double> visits = entry;
  for (int iteration = 0; iteration < 10000; ++iteration) {
    std::vector<double> fresh = entry;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) fresh[j] += visits[i] * p[i][j];
    }
    double delta = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      delta += std::abs(fresh[j] - visits[j]);
    }
    visits.swap(fresh);
    if (delta < 1e-12) break;
  }
  double total = 0.0;
  for (double v : visits) total += v;
  return total;
}

std::vector<double> SessionModel::visit_fractions() const {
  // Reuse the expected-visit computation and normalize.
  const std::size_t n = states_.size();
  std::vector<double> entry(n);
  for (std::size_t i = 0; i < n; ++i) entry[i] = entry_weights_[i] / entry_total_;
  std::vector<double> visits = entry;
  for (int iteration = 0; iteration < 10000; ++iteration) {
    std::vector<double> fresh = entry;
    for (std::size_t i = 0; i < n; ++i) {
      double total = states_[i].exit_weight;
      for (double w : states_[i].transitions) total += w;
      for (std::size_t j = 0; j < n; ++j) {
        fresh[j] += visits[i] * states_[i].transitions[j] / total;
      }
    }
    double delta = 0.0;
    for (std::size_t j = 0; j < n; ++j) delta += std::abs(fresh[j] - visits[j]);
    visits.swap(fresh);
    if (delta < 1e-12) break;
  }
  double total = 0.0;
  for (double v : visits) total += v;
  for (double& v : visits) v /= total;
  return visits;
}

SessionModel SessionModel::rubbos_browse(const RequestMix& mix) {
  auto class_named = [&mix](const std::string& name) -> std::size_t {
    for (std::size_t i = 0; i < mix.classes().size(); ++i) {
      if (mix.classes()[i].name == name) return i;
    }
    return 0;
  };
  // States: Categories -> Story <-> Comment, occasional Search; users leave
  // mostly from Story/Comment. Weights chosen for a mean session of ~8
  // pages dominated by cheap browsing.
  SessionModel::State categories;
  categories.name = "BrowseCategories";
  categories.class_index = class_named("BrowseCategories");
  categories.think_mean = 1.0;
  categories.transitions = {0.5, 6.0, 0.5, 1.0};
  categories.exit_weight = 0.5;

  SessionModel::State story;
  story.name = "ViewStory";
  story.class_index = class_named("ViewStory");
  story.think_mean = 2.0;
  story.transitions = {1.0, 2.0, 3.5, 0.5};
  story.exit_weight = 1.5;

  SessionModel::State comment;
  comment.name = "ViewComment";
  comment.class_index = class_named("ViewComment");
  comment.think_mean = 1.2;
  comment.transitions = {0.5, 2.5, 2.0, 0.3};
  comment.exit_weight = 1.7;

  SessionModel::State search;
  search.name = "SearchInStories";
  search.class_index = class_named("SearchInStories");
  search.think_mean = 2.5;
  search.transitions = {0.5, 3.0, 0.5, 0.5};
  search.exit_weight = 0.5;

  return SessionModel({categories, story, comment, search},
                      {3.0, 5.0, 0.5, 1.0});
}

}  // namespace conscale
