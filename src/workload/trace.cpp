#include "workload/trace.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace conscale {

std::string to_string(TraceKind kind) {
  switch (kind) {
    case TraceKind::kLargeVariations:
      return "large_variations";
    case TraceKind::kQuicklyVarying:
      return "quickly_varying";
    case TraceKind::kSlowlyVarying:
      return "slowly_varying";
    case TraceKind::kBigSpike:
      return "big_spike";
    case TraceKind::kDualPhase:
      return "dual_phase";
    case TraceKind::kSteepTriPhase:
      return "steep_tri_phase";
  }
  return "unknown";
}

const std::vector<TraceKind>& all_trace_kinds() {
  static const std::vector<TraceKind> kinds = {
      TraceKind::kLargeVariations, TraceKind::kQuicklyVarying,
      TraceKind::kSlowlyVarying,   TraceKind::kBigSpike,
      TraceKind::kDualPhase,       TraceKind::kSteepTriPhase};
  return kinds;
}

WorkloadTrace::WorkloadTrace(std::string name, SimDuration sample_period,
                             std::vector<double> samples)
    : name_(std::move(name)), sample_period_(sample_period),
      samples_(std::move(samples)) {
  if (samples_.size() < 2) {
    throw std::invalid_argument("WorkloadTrace needs at least two samples");
  }
  if (sample_period_ <= 0.0) {
    throw std::invalid_argument("WorkloadTrace sample period must be > 0");
  }
}

double WorkloadTrace::users_at(SimTime t) const {
  if (t <= 0.0) return samples_.front();
  const double pos = t / sample_period_;
  const auto idx = static_cast<std::size_t>(pos);
  if (idx + 1 >= samples_.size()) return samples_.back();
  const double frac = pos - static_cast<double>(idx);
  return samples_[idx] + frac * (samples_[idx + 1] - samples_[idx]);
}

double WorkloadTrace::peak_users() const {
  return *std::max_element(samples_.begin(), samples_.end());
}

namespace {

// Shape functions return a load level in [0, 1] for phase u in [0, 1].
// All traces start near their floor: the paper's runs begin with a 1/1/1
// topology that copes with the initial load, and burstiness arrives later.
double gaussian_bump(double u, double center, double width) {
  const double d = (u - center) / width;
  return std::exp(-0.5 * d * d);
}

double shape_large_variations(double u) {
  // Three steep crests of different heights with deep valleys between them
  // (Fig 9(a)). Rise time ~25-35 s out of a 720 s run — decidedly faster
  // than the ~17 s detect+provision latency per VM, so every crest opens a
  // temporary-overload window, exactly like the paper's 62 s / 244 s / 545 s
  // spike periods.
  return 0.18 + 0.48 * gaussian_bump(u, 0.13, 0.035) +
         0.82 * gaussian_bump(u, 0.44, 0.045) +
         0.60 * gaussian_bump(u, 0.79, 0.038);
}

double shape_quickly_varying(double u) {
  // Fast oscillation between ~1/3 and full load: ~9 bursts over the run,
  // sharpened crests (Fig 9(b)).
  const double osc =
      0.5 + 0.5 * std::sin(2.0 * std::numbers::pi * 9.0 * u -
                           std::numbers::pi / 2.0);
  return 0.34 + 0.66 * osc * osc;
}

double shape_slowly_varying(double u) {
  // A single broad hump: rise through the first half, fall in the second.
  const double hump = std::sin(std::numbers::pi * u);
  return 0.12 + 0.88 * hump * hump;
}

double shape_big_spike(double u) {
  const double base = 0.32 + 0.05 * std::sin(2.0 * std::numbers::pi * u);
  // Sudden spike around 45% of the run, ~8% of the duration wide.
  const double center = 0.45;
  const double width = 0.04;
  const double d = (u - center) / width;
  const double spike = std::exp(-0.5 * d * d);
  return base + 0.68 * spike;
}

double shape_dual_phase(double u) {
  // Low plateau, steep transition, high plateau, settle back down at the end.
  const double rise = 1.0 / (1.0 + std::exp(-(u - 0.40) / 0.025));
  const double fall = 1.0 / (1.0 + std::exp(-(u - 0.92) / 0.02));
  return 0.30 + 0.62 * rise - 0.55 * fall;
}

double shape_steep_tri_phase(double u) {
  // Three steep steps up and then back down; each riser takes ~15-20 s,
  // comparable to one VM provisioning period (Fig 9(f)).
  auto step = [](double x, double at) {
    return 1.0 / (1.0 + std::exp(-(x - at) / 0.006));
  };
  const double up =
      step(u, 0.18) + step(u, 0.38) + step(u, 0.58);
  const double down = step(u, 0.78) + step(u, 0.90);
  return 0.16 + 0.28 * up - 0.36 * down;
}

double shape_value(TraceKind kind, double u) {
  switch (kind) {
    case TraceKind::kLargeVariations:
      return shape_large_variations(u);
    case TraceKind::kQuicklyVarying:
      return shape_quickly_varying(u);
    case TraceKind::kSlowlyVarying:
      return shape_slowly_varying(u);
    case TraceKind::kBigSpike:
      return shape_big_spike(u);
    case TraceKind::kDualPhase:
      return shape_dual_phase(u);
    case TraceKind::kSteepTriPhase:
      return shape_steep_tri_phase(u);
  }
  return 0.5;
}

}  // namespace

WorkloadTrace make_trace(TraceKind kind, const TraceParams& params) {
  const auto count =
      static_cast<std::size_t>(params.duration / params.sample_period) + 1;
  Rng rng(params.seed ^ (static_cast<std::uint64_t>(kind) * 0x9e3779b9ULL));
  std::vector<double> samples;
  samples.reserve(count);
  const double floor_users = params.max_users * params.min_users_fraction;
  // First pass: raw shape values, tracked for normalization so every trace
  // peaks exactly at max_users regardless of shape arithmetic.
  std::vector<double> raw(count);
  double raw_max = 0.0;
  for (std::size_t i = 0; i < count; ++i) {
    const double u = static_cast<double>(i) / static_cast<double>(count - 1);
    raw[i] = std::max(shape_value(kind, u), 0.0);
    raw_max = std::max(raw_max, raw[i]);
  }
  if (raw_max <= 0.0) raw_max = 1.0;
  for (std::size_t i = 0; i < count; ++i) {
    double users =
        floor_users + (params.max_users - floor_users) * raw[i] / raw_max;
    if (params.noise_fraction > 0.0) {
      users *= 1.0 + params.noise_fraction * rng.normal();
    }
    samples.push_back(std::clamp(users, 0.0, params.max_users * 1.05));
  }
  return WorkloadTrace(to_string(kind), params.sample_period,
                       std::move(samples));
}

WorkloadTrace make_constant_trace(double users, SimDuration duration,
                                  SimDuration sample_period) {
  const auto count =
      static_cast<std::size_t>(duration / sample_period) + 1;
  return WorkloadTrace("constant",  sample_period,
                       std::vector<double>(std::max<std::size_t>(count, 2),
                                           users));
}

WorkloadTrace make_ramp_trace(double lo_users, double hi_users,
                              SimDuration duration,
                              SimDuration sample_period) {
  const auto count = std::max<std::size_t>(
      static_cast<std::size_t>(duration / sample_period) + 1, 3);
  std::vector<double> samples(count);
  for (std::size_t i = 0; i < count; ++i) {
    const double u = static_cast<double>(i) / static_cast<double>(count - 1);
    const double tri = u < 0.5 ? 2.0 * u : 2.0 * (1.0 - u);
    samples[i] = lo_users + (hi_users - lo_users) * tri;
  }
  return WorkloadTrace("ramp", sample_period, std::move(samples));
}

}  // namespace conscale
