#include "workload/session_population.h"

#include <cmath>

namespace conscale {

SessionPopulation::SessionPopulation(Simulation& sim,
                                     const WorkloadTrace& trace,
                                     const RequestMix& mix,
                                     const SessionModel& model,
                                     SubmitFn submit, Params params)
    : sim_(sim), trace_(trace), mix_(mix), model_(model),
      submit_(std::move(submit)), params_(params), rng_(params.seed) {
  adjust_population(sim_.now());
  adjust_task_ = std::make_unique<PeriodicTask>(
      sim_, params_.adjust_period,
      [this](SimTime now) { adjust_population(now); });
}

SessionPopulation::~SessionPopulation() {
  adjust_task_.reset();
  // Order-independence proof: cancel() only flips each user's own arena
  // slot; no slot is shared between users, nothing is measured afterwards,
  // and the destructor runs after all results are extracted.
  // detlint: allow(unordered-iter) teardown-only; per-user cancel is commutative
  for (auto& [id, user] : users_) user.pending.cancel();
}

void SessionPopulation::adjust_population(SimTime now) {
  const auto target = static_cast<std::size_t>(
      std::llround(std::max(trace_.users_at(now), 0.0)));
  const std::size_t active = users_.size();
  const std::size_t alive = active - std::min(retire_pending_, active);
  if (target > alive) {
    const std::size_t to_spawn = target - alive;
    const std::size_t cancelled = std::min(retire_pending_, to_spawn);
    retire_pending_ -= cancelled;
    for (std::size_t i = 0; i < to_spawn - cancelled; ++i) spawn_user();
  } else if (target < alive) {
    retire_pending_ += alive - target;
  }
}

void SessionPopulation::spawn_user() {
  const std::uint64_t id = next_user_id_++;
  users_.emplace(id, User{});
  begin_session(id);
}

bool SessionPopulation::maybe_retire(std::uint64_t id) {
  if (retire_pending_ == 0) return false;
  auto it = users_.find(id);
  if (it == users_.end()) return true;
  --retire_pending_;
  it->second.pending.cancel();
  users_.erase(it);
  return true;
}

void SessionPopulation::begin_session(std::uint64_t id) {
  if (maybe_retire(id)) return;
  auto it = users_.find(id);
  if (it == users_.end()) return;
  it->second.state = model_.pick_entry(rng_);
  it->second.in_session = true;
  ++sessions_started_;
  // Issue through the event queue: users spawned at construction time must
  // not hit the system before its bootstrap VMs have come online.
  it->second.pending = sim_.schedule_after(0.0, [this, id] { issue(id); });
}

void SessionPopulation::issue(std::uint64_t id) {
  auto it = users_.find(id);
  if (it == users_.end()) return;
  const auto& state = model_.states()[it->second.state];
  RequestContext ctx;
  ctx.id = next_request_id_++;
  ctx.request_class = &mix_.classes().at(state.class_index);
  ctx.issued_at = sim_.now();
  ++issued_;
  submit_(ctx, [this, id, ctx] {
    ++completed_;
    const double rt = sim_.now() - ctx.issued_at;
    rt_histogram_.add(rt);
    if (hook_) hook_(ctx.issued_at, rt, *ctx.request_class);
    after_response(id);
  });
}

void SessionPopulation::after_response(std::uint64_t id) {
  auto it = users_.find(id);
  if (it == users_.end()) return;
  const auto& state = model_.states()[it->second.state];
  ++per_state_[state.name];
  if (maybe_retire(id)) return;
  it = users_.find(id);
  if (it == users_.end()) return;
  const auto next_state = model_.next(it->second.state, rng_);
  if (next_state) {
    it->second.state = *next_state;
    it->second.pending = sim_.schedule_after(
        rng_.exponential(state.think_mean), [this, id] { issue(id); });
  } else {
    // Session over: pause, then come back for a fresh one.
    it->second.in_session = false;
    ++sessions_finished_;
    it->second.pending = sim_.schedule_after(
        rng_.exponential(params_.inter_session_gap_mean),
        [this, id] { begin_session(id); });
  }
}

}  // namespace conscale
