#include "workload/client.h"

#include <cmath>

namespace conscale {

namespace {

// A plain SubmitFn can never reject; wrap it so the internal path is
// uniformly outcome-aware without changing its event sequence.
ClientPopulation::OutcomeSubmitFn wrap_submit(ClientPopulation::SubmitFn fn) {
  return [fn = std::move(fn)](const RequestContext& ctx,
                              std::function<void(RequestOutcome)> done) {
    fn(ctx, [done = std::move(done)] { done(RequestOutcome::kServed); });
  };
}

}  // namespace

ClientPopulation::ClientPopulation(Simulation& sim, const WorkloadTrace& trace,
                                   const RequestMix& mix, SubmitFn submit,
                                   Params params)
    : ClientPopulation(sim, trace, mix, wrap_submit(std::move(submit)),
                       params) {}

ClientPopulation::ClientPopulation(Simulation& sim, const WorkloadTrace& trace,
                                   const RequestMix& mix,
                                   OutcomeSubmitFn submit, Params params)
    : sim_(sim), trace_(trace), mix_(&mix), submit_(std::move(submit)),
      params_(params), rng_(params.seed) {
  adjust_population(sim_.now());
  adjust_task_ = std::make_unique<PeriodicTask>(
      sim_, params_.adjust_period,
      [this](SimTime now) { adjust_population(now); });
}

ClientPopulation::~ClientPopulation() {
  adjust_task_.reset();
  // Order-independence proof: cancel() only flips each user's own arena
  // slot; no slot is shared between users, nothing is measured afterwards,
  // and the destructor runs after all results are extracted.
  // detlint: allow(unordered-iter) teardown-only; per-user cancel is commutative
  for (auto& [id, user] : users_) user.think_event.cancel();
}

void ClientPopulation::adjust_population(SimTime now) {
  const auto target = static_cast<std::size_t>(
      std::llround(std::max(trace_.users_at(now), 0.0)));
  const std::size_t active = users_.size();
  // Users logically alive = active minus those already marked for retirement.
  const std::size_t alive = active - std::min(retire_pending_, active);
  if (target > alive) {
    const std::size_t to_spawn = target - alive;
    // Cancel pending retirements first (a user about to leave "stays").
    const std::size_t cancelled = std::min(retire_pending_, to_spawn);
    retire_pending_ -= cancelled;
    for (std::size_t i = 0; i < to_spawn - cancelled; ++i) spawn_user();
  } else if (target < alive) {
    retire_pending_ += alive - target;
  }
}

void ClientPopulation::spawn_user() {
  const std::uint64_t id = next_user_id_++;
  users_.emplace(id, User{});
  user_think(id);
}

void ClientPopulation::user_think(std::uint64_t id) {
  if (maybe_retire(id)) return;
  auto it = users_.find(id);
  if (it == users_.end()) return;
  const double think =
      params_.think_time_mean > 0.0
          ? rng_.exponential(params_.think_time_mean)
          : 0.0;
  it->second.think_event =
      sim_.schedule_after(think, [this, id] { user_submit(id); });
}

void ClientPopulation::user_submit(std::uint64_t id) {
  if (maybe_retire(id)) return;
  auto it = users_.find(id);
  if (it == users_.end()) return;
  it->second.in_flight = true;

  RequestContext ctx;
  ctx.id = next_request_id_++;
  ctx.request_class = &mix_->pick(rng_);
  ctx.issued_at = sim_.now();
  ++issued_;

  submit_(ctx, [this, id, ctx](RequestOutcome outcome) {
    if (outcome == RequestOutcome::kServed) {
      ++completed_;
      const double rt = sim_.now() - ctx.issued_at;
      rt_histogram_.add(rt);
      if (hook_) hook_(ctx.issued_at, rt, *ctx.request_class);
    } else {
      ++rejected_;
      if (rejection_hook_) rejection_hook_(sim_.now());
    }
    auto it2 = users_.find(id);
    if (it2 == users_.end()) return;
    it2->second.in_flight = false;
    user_think(id);
  });
}

bool ClientPopulation::maybe_retire(std::uint64_t id) {
  if (retire_pending_ == 0) return false;
  auto it = users_.find(id);
  if (it == users_.end()) return true;
  --retire_pending_;
  it->second.think_event.cancel();
  users_.erase(it);
  return true;
}

}  // namespace conscale
