#include "workload/mix.h"

#include <cassert>
#include <stdexcept>

namespace conscale {

RequestMix::RequestMix(std::vector<RequestClass> classes)
    : classes_(std::move(classes)) {
  rebuild_weights();
}

void RequestMix::rebuild_weights() {
  cumulative_weights_.clear();
  double total = 0.0;
  for (const auto& c : classes_) {
    if (c.weight < 0.0) throw std::invalid_argument("negative class weight");
    total += c.weight;
    cumulative_weights_.push_back(total);
  }
  if (!classes_.empty() && total <= 0.0) {
    throw std::invalid_argument("request mix has zero total weight");
  }
}

const RequestClass& RequestMix::pick(Rng& rng) const {
  assert(!classes_.empty());
  const double target = rng.uniform() * cumulative_weights_.back();
  for (std::size_t i = 0; i < classes_.size(); ++i) {
    if (target < cumulative_weights_[i]) return classes_[i];
  }
  return classes_.back();
}

void RequestMix::apply_dataset_scale(double factor) {
  if (factor <= 0.0) throw std::invalid_argument("dataset scale must be > 0");
  const double relative = factor / dataset_scale_;
  dataset_scale_ = factor;
  for (auto& c : classes_) {
    if (c.tiers.size() >= 2) {
      c.tiers[1].cpu_post *= relative;  // app-tier result processing
    }
    if (c.tiers.size() >= 3) {
      c.tiers[2].cpu_pre *= relative;  // db-tier scan/filter cost (mild)
    }
  }
}

namespace {

RequestClass make_browse_class(const MixParams& p, const std::string& name,
                               double weight, double heaviness) {
  RequestClass c;
  c.name = name;
  c.is_write = false;
  c.weight = weight;
  c.demand_cv = p.demand_cv;
  const double s = p.work_scale * heaviness;
  PhaseDemand web;
  web.cpu_pre = p.web_cpu * s;
  web.pure_delay = p.web_delay * p.work_scale;
  web.downstream_calls = 1;
  PhaseDemand app;
  app.cpu_pre = p.app_cpu_pre * s;
  app.cpu_post = p.app_cpu_post * s * p.dataset_scale;
  app.pure_delay = p.app_delay * p.work_scale;
  app.downstream_calls = p.app_db_queries;
  PhaseDemand db;
  db.cpu_pre = p.db_cpu_browse * s;
  db.pure_delay = p.db_delay * p.work_scale;
  c.tiers = {web, app, db};
  return c;
}

RequestClass make_write_class(const MixParams& p, const std::string& name,
                              double weight, double heaviness) {
  RequestClass c;
  c.name = name;
  c.is_write = true;
  c.weight = weight;
  c.demand_cv = p.demand_cv;
  const double s = p.work_scale * heaviness;
  PhaseDemand web;
  web.cpu_pre = p.web_cpu * s;
  web.pure_delay = p.web_delay * p.work_scale;
  web.downstream_calls = 1;
  PhaseDemand app;
  app.cpu_pre = p.app_cpu_pre * s;
  app.cpu_post = 0.5 * p.app_cpu_post * s * p.dataset_scale;
  app.pure_delay = p.app_delay * p.work_scale;
  app.downstream_calls = p.app_db_queries;
  PhaseDemand db;
  db.cpu_pre = p.db_cpu_write * s;
  db.disk = p.db_disk_write * s;
  db.pure_delay = p.db_delay * p.work_scale;
  c.tiers = {web, app, db};
  return c;
}

}  // namespace

RequestMix make_browse_only_mix(const MixParams& params) {
  // A handful of interaction types with different weights/heaviness, standing
  // in for RUBBoS's 24 servlets; all CPU-bound at the DB.
  std::vector<RequestClass> classes;
  classes.push_back(make_browse_class(params, "ViewStory", 4.0, 1.0));
  classes.push_back(make_browse_class(params, "BrowseCategories", 2.0, 0.7));
  classes.push_back(make_browse_class(params, "SearchInStories", 1.0, 1.5));
  classes.push_back(make_browse_class(params, "ViewComment", 3.0, 0.8));
  RequestMix mix{std::move(classes)};
  return mix;
}

RequestMix make_read_write_mix(const MixParams& params) {
  // I/O-intensive mode: the paper's "StoreStory" read/write mix moves the
  // DB's critical resource from CPU to disk. Reads in this mode are uncached
  // (the write traffic churns the buffer pool), so even the browse-style
  // classes touch the disk.
  std::vector<RequestClass> classes;
  auto uncached = [&](RequestClass c) {
    c.tiers[2].disk = 0.4 * params.db_disk_write * params.work_scale;
    return c;
  };
  classes.push_back(uncached(make_browse_class(params, "ViewStory", 1.0, 1.0)));
  classes.push_back(make_write_class(params, "StoreStory", 4.0, 1.0));
  classes.push_back(make_write_class(params, "StoreComment", 3.0, 0.8));
  classes.push_back(make_write_class(params, "ModerateComment", 1.0, 0.6));
  RequestMix mix{std::move(classes)};
  return mix;
}

}  // namespace conscale
