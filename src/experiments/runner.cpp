#include "experiments/runner.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "workload/client.h"
#include "workload/session_population.h"

namespace conscale {

FrameworkConfig make_framework_config(const ScenarioParams& params) {
  FrameworkConfig config;
  config.targets.thread_adapt_tiers = {kAppTier};
  config.targets.conn_adapt = {{kAppTier, kDbTier}};
  config.controller.tick = 1.0;
  // Re-apply the policy's recommendation on a slow cadence as well as at
  // scaling events, so a crunch that develops *between* hardware actions
  // still gets its soft resources adapted promptly (the estimator is
  // asynchronous, Fig 8).
  config.controller.periodic_adapt = 10.0;
  config.estimator.window = 180.0;
  config.estimator.refresh = 5.0;
  (void)params;
  return config;
}

ScalingRunResult run_scaling(const ScenarioParams& params, TraceKind kind,
                             const std::string& framework,
                             const ScalingRunOptions& options) {
  TraceParams tp;
  tp.duration = options.duration;
  tp.max_users = params.scaled_users(params.max_users);
  tp.seed = params.seed ^ 0xbeef;
  const WorkloadTrace trace = make_trace(kind, tp);
  return run_scaling(params, trace, framework, options);
}

ScalingRunResult run_scaling(const ScenarioParams& params,
                             const WorkloadTrace& trace,
                             const std::string& framework_ref,
                             const ScalingRunOptions& options) {
  Simulation sim;
  RequestMix mix = params.make_mix();
  if (options.runtime_dataset_scale != 1.0) {
    mix.apply_dataset_scale(options.runtime_dataset_scale);
  }

  const RunContext* ctx = &options.context;
  NTierSystem system(sim, params.system_config(), ctx);
  auto warehouse = std::make_shared<MetricsWarehouse>();
  MonitoringParams monitoring = options.monitoring;
  // Keep the fine interval matched to the service-demand scale (see the
  // same adjustment in collect_scatter): at work_scale k, "50 ms" means
  // 50k ms or each window holds k× fewer completions than the paper's.
  monitoring.fine_period *= params.work_scale;
  MonitoringAgent monitor(sim, system, *warehouse, monitoring, ctx);

  FrameworkConfig config = options.framework_config
                               ? *options.framework_config
                               : make_framework_config(params);
  ScalingFramework framework(sim, system, *warehouse, framework_ref, config,
                             ctx);

  auto submit_fn = [&system](const RequestContext& request,
                             std::function<void()> done) {
    system.submit(request, std::move(done));
  };
  auto completion_hook = [&monitor](SimTime issued, double rt,
                                    const RequestClass&) {
    monitor.on_client_completion(issued, rt);
  };
  std::unique_ptr<ClientPopulation> clients;
  std::unique_ptr<SessionModel> session_model;
  std::unique_ptr<SessionPopulation> sessions;
  if (options.session_workload) {
    session_model =
        std::make_unique<SessionModel>(SessionModel::rubbos_browse(mix));
    SessionPopulation::Params sp;
    sp.seed = params.seed ^ 0xc11e;
    sessions = std::make_unique<SessionPopulation>(sim, trace, mix,
                                                   *session_model, submit_fn,
                                                   sp);
    sessions->set_completion_hook(completion_hook);
  } else {
    ClientPopulation::Params client_params;
    client_params.think_time_mean = params.think_time;
    client_params.seed = params.seed ^ 0xc11e;
    clients = std::make_unique<ClientPopulation>(sim, trace, mix, submit_fn,
                                                 client_params);
    clients->set_completion_hook(completion_hook);
  }

  // Fault injection is opt-in per run: with an empty plan no injector is
  // even constructed, so fault-free runs execute the exact event sequence
  // they did before the subsystem existed.
  std::unique_ptr<FaultInjector> injector;
  if (!options.faults.empty()) {
    injector = std::make_unique<FaultInjector>(sim, system, warehouse.get(),
                                               options.faults, ctx);
    injector->arm();
  }

  sim.run_until(options.duration);

  ScalingRunResult result;
  result.framework_name = framework.name();
  result.framework_key = framework.key();
  result.trace_name = trace.name();
  result.controller_counters = framework.controller().counters();
  result.system = warehouse->system_series();
  for (std::size_t i = 0; i < system.tier_count(); ++i) {
    const std::string& name = system.tier(i).name();
    result.tiers[name] = warehouse->tier_series(name);
  }
  result.events = framework.all_events();
  if (auto* estimator = framework.estimator_service()) {
    result.sct_history = estimator->history();
  }
  const LogHistogram& rts =
      clients ? clients->response_times() : sessions->response_times();
  result.mean_rt_ms = to_ms(rts.mean());
  result.p50_ms = to_ms(rts.percentile(50.0));
  result.p95_ms = to_ms(rts.percentile(95.0));
  result.p99_ms = to_ms(rts.percentile(99.0));
  result.max_rt_ms = to_ms(rts.max_recorded());
  result.sla_500ms = rts.fraction_below(0.5);
  result.requests_issued =
      clients ? clients->requests_issued() : sessions->requests_issued();
  result.requests_completed = clients ? clients->requests_completed()
                                      : sessions->requests_completed();
  result.requests_rejected = clients ? clients->requests_rejected() : 0;
  result.hook_underflows = monitor.hook_underflows();
  if (injector) {
    result.fault_stats = injector->stats();
    result.fault_windows = injector->windows();
    result.fault_plan_text = injector->plan().to_text();
    result.requests_aborted = system.total_aborted_requests();
    result.dropped_samples = warehouse->dropped_samples();
  }
  result.warehouse = std::move(warehouse);
  return result;
}

namespace {

/// Scenario tuned for profiling: fixed topology, no autoscaling headroom.
ScenarioParams profiling_params(const ScenarioParams& base,
                                std::size_t app_vms, std::size_t db_vms) {
  ScenarioParams p = base;
  p.web_init = p.web_min = p.web_max = 1;
  p.app_init = p.app_min = p.app_max = app_vms;
  p.db_init = p.db_min = p.db_max = db_vms;
  return p;
}

}  // namespace

std::vector<SweepPoint> run_concurrency_sweep(
    const ScenarioParams& params, std::size_t target_tier,
    const std::vector<int>& levels, const SweepOptions& options) {
  std::vector<SweepPoint> points;
  points.reserve(levels.size());
  for (int level : levels) {
    ScenarioParams p =
        profiling_params(params, options.fixed_app_vms, options.fixed_db_vms);
    const auto k = static_cast<std::size_t>(std::max(level, 1));
    // Pin the target tier's processing concurrency to `level`: exactly
    // `level` zero-think users, and pool sizes that neither gate below nor
    // queue above it (§II-B: "we configure the same concurrency setting for
    // the corresponding server to avoid queue overflow").
    p.web_threads = 4096;
    if (target_tier == kWebTier) {
      p.web_threads = k;
    } else if (target_tier == kAppTier) {
      p.app_threads = k;
      p.app_dbconn = std::max<std::size_t>(k, 1);
    } else {
      p.app_threads = 4096;
      const std::size_t per_app =
          (k + options.fixed_app_vms - 1) / options.fixed_app_vms;
      p.app_dbconn = std::max<std::size_t>(per_app, 1);
      p.db_threads = std::max<std::size_t>(k, 1);
    }

    Simulation sim;
    RequestMix mix = p.make_mix();
    NTierSystem system(sim, p.system_config());
    ClientPopulation::Params cp;
    cp.think_time_mean = 0.0;  // §II-B: zero think time
    cp.seed = p.seed ^ (0x5eed + static_cast<std::uint64_t>(level));
    const WorkloadTrace trace = make_constant_trace(
        static_cast<double>(level), options.settle + options.measure + 1.0);
    ClientPopulation clients(
        sim, trace, mix,
        [&system](const RequestContext& ctx, std::function<void()> done) {
          system.submit(ctx, std::move(done));
        },
        cp);

    // Target-tier measurement hooks with a warmup gate.
    bool measuring = false;
    std::uint64_t completions = 0;
    double rt_sum = 0.0;
    for (Vm* vm : system.tier(target_tier).all_vms()) {
      Server::Hooks hooks;
      hooks.on_departed = [&](SimTime, double rt) {
        if (!measuring) return;
        ++completions;
        rt_sum += rt;
      };
      vm->server().add_hooks(std::move(hooks));
    }
    sim.schedule_at(options.settle, [&measuring] { measuring = true; });
    sim.run_until(options.settle + options.measure);

    SweepPoint point;
    point.concurrency = level;
    point.throughput = static_cast<double>(completions) / options.measure;
    point.mean_rt_ms =
        completions ? to_ms(rt_sum / static_cast<double>(completions)) : 0.0;
    points.push_back(point);
  }
  return points;
}

ScatterRunResult collect_scatter(const ScenarioParams& params,
                                 std::size_t target_tier,
                                 const ScatterRunOptions& options) {
  ScenarioParams p =
      profiling_params(params, options.fixed_app_vms, options.fixed_db_vms);
  // Open every soft resource wide so the offered load, not a pool, sets the
  // target tier's concurrency — the scatter must cover all three stages.
  p.web_threads = 4096;
  p.app_threads = 1024;
  p.app_dbconn = 1024;
  p.db_threads = 2048;

  Simulation sim;
  RequestMix mix = p.make_mix();
  NTierSystem system(sim, p.system_config(), &options.context);
  auto warehouse = std::make_shared<MetricsWarehouse>();
  MonitoringParams mp;
  // The 50 ms interval is matched to the paper's sub-millisecond service
  // demands; when work_scale stretches every demand, the measurement window
  // must stretch with it or per-window completion counts (and thus the
  // statistical quality of each {Q,TP} tuple) collapse.
  mp.fine_period = options.fine_period * p.work_scale;
  MonitoringAgent monitor(sim, system, *warehouse, mp, &options.context);

  ClientPopulation::Params cp;
  cp.think_time_mean = 0.0;
  cp.seed = p.seed ^ 0x5ca7;
  const WorkloadTrace trace =
      make_ramp_trace(1.0, options.max_users, options.duration);
  ClientPopulation clients(
      sim, trace, mix,
      [&system](const RequestContext& ctx, std::function<void()> done) {
        system.submit(ctx, std::move(done));
      },
      cp);

  sim.run_until(options.duration);

  ScatterRunResult result;
  bool first = true;
  for (Vm* vm : system.tier(target_tier).all_vms()) {
    const auto& series = warehouse->server_series(vm->name());
    result.scatter.add_all(series);
    if (first) {
      result.raw_samples = series;
      first = false;
    }
  }
  SctEstimator estimator(options.sct);
  result.range = estimator.estimate(result.scatter);
  result.stages = estimator.classify(result.scatter);
  return result;
}

DcmProfile train_dcm_profile(const ScenarioParams& params) {
  // Offline profiling runs at native demand scale regardless of the
  // production run's work_scale: the optima are concurrency counts, which
  // depend only on demand *ratios*, and the native scale gives the profiler
  // the most samples per concurrency level.
  ScenarioParams training = params;
  training.work_scale = 1.0;

  DcmProfile profile;
  // Profile the app tier with a wide DB tier so Tomcat is the single
  // bottleneck (the paper's 1/1/4), and vice versa for MySQL.
  {
    ScatterRunOptions options;
    options.duration = 180.0;
    options.fixed_db_vms = 4;
    auto run = collect_scatter(training, kAppTier, options);
    if (run.range) {
      profile.tier_optimal_concurrency[kAppTier] = run.range->optimal;
    }
  }
  {
    ScatterRunOptions options;
    options.duration = 180.0;
    options.max_users = 140.0;
    options.fixed_app_vms = 4;
    auto run = collect_scatter(training, kDbTier, options);
    if (run.range) {
      profile.tier_optimal_concurrency[kDbTier] = run.range->optimal;
    }
  }
  return profile;
}

}  // namespace conscale
