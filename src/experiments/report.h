// Report helpers: render run results the way the paper presents them —
// timeline line charts, concurrency-throughput scatter graphs, and tail-
// latency tables — as terminal text, with optional CSV dumps for external
// plotting.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "experiments/runner.h"

namespace conscale {

/// Fig 10/11-style panel: response time + throughput timelines.
void print_performance_timeline(std::ostream& out, const std::string& title,
                                const ScalingRunResult& result);

/// Fig 10(c)/(d)-style panel: per-tier CPU utilization + total VM count.
void print_scaling_timeline(std::ostream& out, const std::string& title,
                            const ScalingRunResult& result);

/// Fig 6/7-style panel: throughput-vs-concurrency scatter with the
/// estimated rational range and stage labels.
void print_scatter_analysis(std::ostream& out, const std::string& title,
                            const ScatterRunResult& result);

/// Fig 3-style panel: throughput and RT versus configured concurrency.
void print_sweep(std::ostream& out, const std::string& title,
                 const std::vector<SweepPoint>& points);

/// One row of Table I.
struct TailRow {
  std::string framework;
  std::string trace;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
};
void print_tail_table(std::ostream& out, const std::string& title,
                      const std::vector<TailRow>& rows);

/// Scaling-event log (Fig 10's "Tomcat scales out at ...").
void print_events(std::ostream& out, const std::vector<ScalingEvent>& events);

/// CSV dumps (written under `dir`, file name derived from `stem`).
void dump_system_csv(const std::string& path, const ScalingRunResult& result);
void dump_scatter_csv(const std::string& path, const ScatterRunResult& result);
/// One row per realized fault window (kind, start, end, tier) — the shading
/// layer under resilience timelines. Writes a header-only file when the run
/// had no faults.
void dump_fault_windows_csv(const std::string& path,
                            const ScalingRunResult& result);
/// One row per controller counter per run (controller, trace, counter,
/// value) — the generic dump of each run's ControllerCounters map, in map
/// (= alphabetical) order within a run.
void dump_counters_csv(const std::string& path,
                       const std::vector<ScalingRunResult>& results);

}  // namespace conscale
