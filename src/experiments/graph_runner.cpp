#include "experiments/graph_runner.h"

#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "common/csv.h"
#include "experiments/parallel.h"
#include "workload/client.h"

namespace conscale {

GraphRunResult run_graph_scaling(const GraphScenario& scenario,
                                 TraceKind kind,
                                 const std::string& framework_ref,
                                 const ScalingRunOptions& options) {
  TraceParams tp;
  tp.duration = options.duration;
  tp.max_users = scenario.base.scaled_users(scenario.base.max_users);
  tp.seed = scenario.base.seed ^ 0xbeef;
  const WorkloadTrace trace = make_trace(kind, tp);
  return run_graph_scaling(scenario, trace, framework_ref, options);
}

GraphRunResult run_graph_scaling(const GraphScenario& scenario,
                                 const WorkloadTrace& trace,
                                 const std::string& framework_ref,
                                 const ScalingRunOptions& options) {
  if (options.session_workload) {
    throw std::invalid_argument(
        "run_graph_scaling: session workloads are not supported on graphs");
  }
  // Assembly order mirrors run_scaling exactly — the linear-equivalence
  // contract (byte-identical results for chain-as-DAG runs) depends on
  // every RNG consumer being constructed and seeded in the same sequence.
  Simulation sim;
  RequestMix mix = scenario.mix;
  if (options.runtime_dataset_scale != 1.0) {
    mix.apply_dataset_scale(options.runtime_dataset_scale);
  }

  const RunContext* ctx = &options.context;
  topology::ServiceGraph system(sim, scenario.graph, ctx);
  auto warehouse = std::make_shared<MetricsWarehouse>();
  MonitoringParams monitoring = options.monitoring;
  monitoring.fine_period *= scenario.base.work_scale;
  MonitoringAgent monitor(sim, system, *warehouse, monitoring, ctx);

  FrameworkConfig config = options.framework_config
                               ? *options.framework_config
                               : scenario.framework;
  ScalingFramework framework(sim, system, *warehouse, framework_ref, config,
                             ctx);
  // Passive RT recorders only — attaching them creates no events and draws
  // no randomness, so it cannot perturb the replayed sequence.
  LatencyBreakdown breakdown(system);

  auto submit_fn = [&system](const RequestContext& request,
                             std::function<void(RequestOutcome)> done) {
    system.submit(request, std::move(done));
  };
  ClientPopulation::Params client_params;
  client_params.think_time_mean = scenario.base.think_time;
  client_params.seed = scenario.base.seed ^ 0xc11e;
  ClientPopulation clients(sim, trace, mix, submit_fn, client_params);
  clients.set_completion_hook([&monitor](SimTime issued, double rt,
                                         const RequestClass&) {
    monitor.on_client_completion(issued, rt);
  });
  clients.set_rejection_hook(
      [&monitor](SimTime at) { monitor.on_client_rejection(at); });

  std::unique_ptr<FaultInjector> injector;
  if (!options.faults.empty()) {
    injector = std::make_unique<FaultInjector>(sim, system, warehouse.get(),
                                               options.faults, ctx);
    injector->arm();
  }

  sim.run_until(options.duration);

  GraphRunResult result;
  ScalingRunResult& run = result.run;
  run.framework_name = framework.name();
  run.framework_key = framework.key();
  run.trace_name = trace.name();
  run.controller_counters = framework.controller().counters();
  run.system = warehouse->system_series();
  for (std::size_t i = 0; i < system.tier_count(); ++i) {
    const std::string& name = system.tier(i).name();
    run.tiers[name] = warehouse->tier_series(name);
  }
  run.events = framework.all_events();
  if (auto* estimator = framework.estimator_service()) {
    run.sct_history = estimator->history();
  }
  const LogHistogram& rts = clients.response_times();
  run.mean_rt_ms = to_ms(rts.mean());
  run.p50_ms = to_ms(rts.percentile(50.0));
  run.p95_ms = to_ms(rts.percentile(95.0));
  run.p99_ms = to_ms(rts.percentile(99.0));
  run.max_rt_ms = to_ms(rts.max_recorded());
  run.sla_500ms = rts.fraction_below(0.5);
  run.requests_issued = clients.requests_issued();
  run.requests_completed = clients.requests_completed();
  run.requests_rejected = clients.requests_rejected();
  run.hook_underflows = monitor.hook_underflows();
  if (injector) {
    run.fault_stats = injector->stats();
    run.fault_windows = injector->windows();
    run.fault_plan_text = injector->plan().to_text();
    run.requests_aborted = system.total_aborted_requests();
    run.dropped_samples = warehouse->dropped_samples();
  }
  run.warehouse = std::move(warehouse);

  result.admission = system.admission_stats();
  for (std::size_t i = 0; i < system.tier_count(); ++i) {
    if (scenario.graph.nodes[i].cache.enabled) {
      result.caches.emplace_back(system.tier(i).name(),
                                 system.cache_stats(i));
    }
  }
  result.node_latency = breakdown.by_tier();
  return result;
}

bool graph_results_equivalent(const GraphRunResult& a, const GraphRunResult& b,
                              std::string* diff) {
  if (!results_equivalent(a.run, b.run, diff)) return false;
  auto fail = [diff](const std::string& message) {
    if (diff) *diff = message;
    return false;
  };
  if (a.admission.admitted != b.admission.admitted ||
      a.admission.rejected_occupancy != b.admission.rejected_occupancy ||
      a.admission.rejected_age != b.admission.rejected_age) {
    return fail("admission stats");
  }
  if (a.caches.size() != b.caches.size()) return fail("cache node count");
  for (std::size_t i = 0; i < a.caches.size(); ++i) {
    if (a.caches[i].first != b.caches[i].first ||
        a.caches[i].second.hits != b.caches[i].second.hits ||
        a.caches[i].second.misses != b.caches[i].second.misses) {
      std::ostringstream message;
      message << "cache stats [" << i << "]";
      return fail(message.str());
    }
  }
  if (a.node_latency.size() != b.node_latency.size()) {
    return fail("node_latency length");
  }
  for (std::size_t i = 0; i < a.node_latency.size(); ++i) {
    const auto& x = a.node_latency[i];
    const auto& y = b.node_latency[i];
    if (x.tier != y.tier || x.completions != y.completions ||
        x.mean_ms != y.mean_ms || x.p50_ms != y.p50_ms ||
        x.p95_ms != y.p95_ms || x.p99_ms != y.p99_ms ||
        x.max_ms != y.max_ms) {
      std::ostringstream message;
      message << "node_latency [" << i << "]";
      return fail(message.str());
    }
  }
  return true;
}

void dump_graph_system_csv(const std::string& path,
                           const GraphRunResult& result) {
  CsvWriter csv(path);
  csv.header({"t", "throughput_rps", "mean_rt_ms", "max_rt_ms", "total_vms",
              "rejected"});
  for (const auto& s : result.run.system) {
    csv.row({s.t, s.throughput, s.mean_rt * 1e3, s.max_rt * 1e3,
             static_cast<double>(s.total_vms),
             static_cast<double>(s.rejected)});
  }
}

void dump_node_latency_csv(const std::string& path,
                           const GraphRunResult& result) {
  CsvWriter csv(path);
  csv.header({"node", "completions", "mean_ms", "p50_ms", "p95_ms", "p99_ms",
              "max_ms"});
  char buffer[64];
  auto fmt = [&buffer](double value) {
    std::snprintf(buffer, sizeof(buffer), "%.6g", value);
    return std::string(buffer);
  };
  for (const auto& row : result.node_latency) {
    csv.raw_row({row.tier, std::to_string(row.completions), fmt(row.mean_ms),
                 fmt(row.p50_ms), fmt(row.p95_ms), fmt(row.p99_ms),
                 fmt(row.max_ms)});
  }
}

}  // namespace conscale
