// run_graph_scaling: the service-graph counterpart of run_scaling. Same
// assembly order, same seed derivations, same extraction — a linear chain
// expressed as a GraphScenario therefore produces a ScalingRunResult
// byte-identical to run_scaling on the equivalent NTierSystem (pinned by
// tests/topology). On top of the chain runner it adds what only graphs
// have: admission/shedding accounting, per-cache-node hit statistics, and a
// per-node latency breakdown.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "experiments/graph_scenario.h"
#include "experiments/runner.h"
#include "metrics/latency_breakdown.h"
#include "topology/service_graph.h"

namespace conscale {

struct GraphRunResult {
  /// Everything a chain run reports (summary percentiles, 1 s series,
  /// events, SCT history, counters, requests_rejected, warehouse).
  ScalingRunResult run;
  topology::AdmissionStats admission;
  /// (node name, stats) for every cache node, in node order.
  std::vector<std::pair<std::string, topology::CacheStats>> caches;
  /// Per-node in-server response-time distributions (replicas merged),
  /// ordered by node name — the "where does the tail live" view.
  std::vector<LatencyBreakdown::ServerStats> node_latency;
};

/// `framework_ref` is a controller-registry reference, exactly as in
/// run_scaling. Graph runs do not support session workloads
/// (options.session_workload throws std::invalid_argument).
GraphRunResult run_graph_scaling(const GraphScenario& scenario,
                                 const WorkloadTrace& trace,
                                 const std::string& framework_ref,
                                 const ScalingRunOptions& options = {});

/// Convenience: build the trace from a kind with the scenario's user scale
/// (seed derivation identical to the chain runner's).
GraphRunResult run_graph_scaling(const GraphScenario& scenario,
                                 TraceKind trace,
                                 const std::string& framework_ref,
                                 const ScalingRunOptions& options = {});

/// Full-field equality over the wrapped run *and* the graph extras; used by
/// the jobs=N-vs-serial determinism contract of the graph benches.
bool graph_results_equivalent(const GraphRunResult& a, const GraphRunResult& b,
                              std::string* diff = nullptr);

/// System timeline CSV with the shedding column the chain dump doesn't have:
/// t, throughput_rps, mean_rt_ms, max_rt_ms, total_vms, rejected.
void dump_graph_system_csv(const std::string& path,
                           const GraphRunResult& result);

/// One row per node: node, completions, mean_ms, p50_ms, p95_ms, p99_ms,
/// max_ms — the per-node latency breakdown consumed by plot_results.py.
void dump_node_latency_csv(const std::string& path,
                           const GraphRunResult& result);

}  // namespace conscale
