// Service-graph scenario presets: the topologies the graph benches run —
// a 3-service fan-out DAG with a shared backend, a cache chain whose hit
// ratio churns mid-run, and the linear chain expressed as the trivial DAG
// (the byte-identical-equivalence anchor against NTierSystem).
//
// A GraphScenario bundles everything run_graph_scaling needs: the DAG
// config, a request mix whose per-"tier" demand vectors are indexed by node,
// and a FrameworkConfig with per-node SCT targets (thread-adapt nodes,
// connection-adapt edges, and an analytic DCM profile so the offline-trained
// framework runs on topologies it was never profiled on).
#pragma once

#include <string>

#include "conscale/framework.h"
#include "experiments/scenario.h"
#include "topology/service_graph.h"
#include "workload/mix.h"

namespace conscale {

struct GraphScenario {
  std::string name;
  /// Carries the run-level knobs (seed, work_scale, think_time, max_users,
  /// vm_prep_delay) shared with the chain experiments.
  ScenarioParams base;
  topology::ServiceGraphConfig graph;
  RequestMix mix;
  /// Default framework wiring for this topology; per-run overrides go
  /// through ScalingRunOptions::framework_config as usual.
  FrameworkConfig framework;
};

/// 3-service DAG: Gateway fans out to {SvcA ∥ SvcB} in parallel (join on
/// both replies); each service queries the same SharedDB node, so the
/// backend sees cross-traffic from two independently scaled parents:
///
///   Gateway ──┬── SvcA ──┐
///             └── SvcB ──┴── SharedDB
///
/// Per-node SCT wiring: thread pools adapt on SvcA/SvcB, connection pools
/// on both edges into SharedDB. Note apply_optima sizes each edge pool for
/// the *whole* downstream optimum — two parents together can offer 2× the
/// DB optimum, which is exactly the shared-backend estimation hazard the
/// topology exists to exercise.
GraphScenario make_fanout_scenario(const ScenarioParams& base);

/// Cache chain: Frontend → Cache → Db, where the cache node short-circuits
/// its subtree on a hit and the hit ratio follows a churning working set —
/// as the working set swells mid-cycle, misses flood the Db node and the
/// critical resource migrates from Frontend to Db within one run.
GraphScenario make_cache_scenario(const ScenarioParams& base);

/// The paper's 3-tier chain (Apache → Tomcat → MySQL) expressed as a
/// service graph: same tier templates, same mix, same framework config.
/// Runs must replay the NTierSystem event sequence byte-identically
/// (pinned by tests/topology/linear_equivalence_test).
GraphScenario make_linear_scenario(const ScenarioParams& base);

}  // namespace conscale
