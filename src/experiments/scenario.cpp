#include "experiments/scenario.h"

namespace conscale {

SystemConfig ScenarioParams::system_config() const {
  SystemConfig config;

  TierConfig web;
  web.name = "Apache";
  web.server_template.cores = web_cores;
  web.server_template.contention = web_contention;
  web.server_template.thread_pool_size = web_threads;
  web.server_template.downstream_pool_size = 0;  // ungated into the app tier
  web.server_template.seed = seed ^ 0x11;
  web.vm_prep_delay = vm_prep_delay;
  web.lb_policy = lb_policy;
  web.min_vms = web_min;
  web.max_vms = web_max;

  TierConfig app;
  app.name = "Tomcat";
  app.server_template.cores = app_cores;
  app.server_template.contention = app_contention;
  app.server_template.thread_pool_size = app_threads;
  app.server_template.downstream_pool_size = app_dbconn;
  app.server_template.seed = seed ^ 0x22;
  app.vm_prep_delay = vm_prep_delay;
  app.lb_policy = lb_policy;
  app.min_vms = app_min;
  app.max_vms = app_max;

  TierConfig db;
  db.name = "MySQL";
  db.server_template.cores = db_cores;
  db.server_template.contention = db_contention;
  db.server_template.thread_pool_size = db_threads;
  db.server_template.downstream_pool_size = 0;
  db.server_template.disk_channels = 1;
  db.server_template.seed = seed ^ 0x33;
  db.vm_prep_delay = vm_prep_delay;
  db.lb_policy = lb_policy;
  db.min_vms = db_min;
  db.max_vms = db_max;

  config.tiers = {web, app, db};
  config.initial_vms = {web_init, app_init, db_init};
  return config;
}

RequestMix ScenarioParams::make_mix() const {
  MixParams p = mix;
  p.work_scale = work_scale;
  // dataset_scale is carried inside MixParams; callers adjust mix.dataset_scale.
  switch (mode) {
    case WorkloadMode::kBrowseOnly:
      return make_browse_only_mix(p);
    case WorkloadMode::kReadWriteMix:
      return make_read_write_mix(p);
  }
  return make_browse_only_mix(p);
}

ScenarioParams ScenarioParams::paper_default() { return ScenarioParams{}; }

ScenarioParams ScenarioParams::test_scale() {
  ScenarioParams params;
  params.work_scale = 8.0;
  params.max_users = 7500.0;
  return params;
}

}  // namespace conscale
