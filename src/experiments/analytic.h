// Bridge between the scenario parameters and the analytical MVA model: an
// *analytical* offline trainer for DCM, matching how the original DCM work
// derives optimal concurrency from a queueing-network model rather than
// from measurement. Lets the benches compare three ways of obtaining the
// optimum: analytical prediction, offline simulation profiling, and the
// online SCT estimate.
#pragma once

#include <cstddef>
#include <vector>

#include "analysis/mva.h"
#include "conscale/policy.h"
#include "experiments/scenario.h"

namespace conscale {

/// Builds the closed-network view of the zero-think profiling topology used
/// to characterize `target_tier` (the target tier gets one VM and carries
/// its contention model; helper tiers are widened so they stay uncongested,
/// mirroring run_concurrency_sweep / collect_scatter).
std::vector<MvaStation> stations_for_tier_profile(const ScenarioParams& params,
                                                  std::size_t target_tier,
                                                  std::size_t helper_app_vms = 4,
                                                  std::size_t helper_db_vms = 4);

/// Per-tier optimal concurrency from the analytical model (MVA knee), the
/// queueing-network counterpart of train_dcm_profile's measured optimum.
DcmProfile train_dcm_profile_analytical(const ScenarioParams& params,
                                        int n_max = 250,
                                        double tolerance = 0.05);

}  // namespace conscale
