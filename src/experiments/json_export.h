// JSON export of experiment results: the machine-readable counterpart of the
// terminal reports, for downstream analysis pipelines (pandas, jq, ...).
#pragma once

#include <iosfwd>
#include <string>

#include "experiments/runner.h"

namespace conscale {

struct JsonExportOptions {
  /// Adds "controller" (the registry key) and "counters" (the controller's
  /// generic diagnostic counter map) to the object. Off by default so the
  /// JSON of every pre-existing bench stays byte-identical.
  bool include_counters = false;
};

/// Writes the full run — summary percentiles, 1 s system/tier series, and
/// the scaling-event log — as one JSON object.
void export_run_json(std::ostream& out, const ScalingRunResult& result,
                     const JsonExportOptions& options = {});

/// Convenience: write to a file; throws std::runtime_error on I/O failure.
void export_run_json(const std::string& path, const ScalingRunResult& result,
                     const JsonExportOptions& options = {});

/// Writes a scatter run (raw 50 ms samples + the SCT estimate) as JSON.
void export_scatter_json(std::ostream& out, const ScatterRunResult& result);

}  // namespace conscale
