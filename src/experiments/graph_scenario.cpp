#include "experiments/graph_scenario.h"

#include <cmath>
#include <utility>
#include <vector>

#include "experiments/runner.h"

namespace conscale {

namespace {

using topology::GraphNodeConfig;
using topology::RouteStage;
using topology::ServiceGraphConfig;

/// Analytic per-server concurrency optimum — the paper's Q_lower mechanism:
/// with per-request CPU demand D and thread-held non-CPU time L, one core
/// saturates around (D + L) / D in-flight requests.
int analytic_optimum(double cpu, double held_delay, int cores) {
  if (cpu <= 0.0) return 1;
  return std::max(
      1, static_cast<int>(std::lround(cores * (cpu + held_delay) / cpu)));
}

GraphNodeConfig make_node(const std::string& name, std::uint64_t seed,
                          const ContentionModel& contention,
                          std::size_t threads, std::size_t downstream_pool,
                          std::size_t min_vms, std::size_t init_vms,
                          std::size_t max_vms, const ScenarioParams& base) {
  GraphNodeConfig node;
  node.tier.name = name;
  node.tier.server_template.cores = 1;
  node.tier.server_template.contention = contention;
  node.tier.server_template.thread_pool_size = threads;
  node.tier.server_template.downstream_pool_size = downstream_pool;
  node.tier.server_template.seed = seed;
  node.tier.vm_prep_delay = base.vm_prep_delay;
  node.tier.lb_policy = base.lb_policy;
  node.tier.min_vms = min_vms;
  node.tier.max_vms = max_vms;
  node.initial_vms = init_vms;
  return node;
}

PhaseDemand phase(double cpu_pre, double cpu_post, double pure_delay,
                  int downstream_calls, double scale) {
  PhaseDemand d;
  d.cpu_pre = cpu_pre * scale;
  d.cpu_post = cpu_post * scale;
  d.pure_delay = pure_delay * scale;
  d.downstream_calls = downstream_calls;
  return d;
}

}  // namespace

GraphScenario make_fanout_scenario(const ScenarioParams& base) {
  GraphScenario scenario;
  scenario.name = "fanout3";
  scenario.base = base;

  const MixParams& m = base.mix;
  const double ws = base.work_scale;

  // ---- topology: Gateway -> {SvcA || SvcB} -> SharedDB ----
  ServiceGraphConfig graph;
  graph.seed = base.seed ^ 0x77;
  GraphNodeConfig gateway =
      make_node("Gateway", base.seed ^ 0x11, base.web_contention,
                base.web_threads, 0, 1, 1, 1, base);
  gateway.route = {RouteStage{{{1}, {2}}}};  // parallel fan-out, join on both
  GraphNodeConfig svc_a =
      make_node("SvcA", base.seed ^ 0x22, base.app_contention,
                base.app_threads, base.app_dbconn, 1, 1, 6, base);
  svc_a.route = {RouteStage{{{3}}}};
  GraphNodeConfig svc_b =
      make_node("SvcB", base.seed ^ 0x44, base.app_contention,
                base.app_threads, base.app_dbconn, 1, 1, 6, base);
  svc_b.route = {RouteStage{{{3}}}};
  GraphNodeConfig db =
      make_node("SharedDB", base.seed ^ 0x33, base.db_contention,
                base.db_threads, 0, 1, 1, 5, base);
  graph.nodes = {gateway, svc_a, svc_b, db};
  scenario.graph = std::move(graph);

  // ---- request classes (per-node demand vectors) ----
  // SvcA is the heavier service (two backend queries); SvcB is lighter
  // (one query, shorter protocol delay). Both meet at SharedDB.
  const double svc_b_delay = 5.0e-3;
  auto make_class = [&](const std::string& name, double weight,
                        double heaviness) {
    RequestClass c;
    c.name = name;
    c.weight = weight;
    c.demand_cv = m.demand_cv;
    const double s = ws * heaviness;
    c.tiers = {
        phase(m.web_cpu, 0.0, 0.0, 1, s),
        phase(m.app_cpu_pre, m.app_cpu_post, 0.0, 2, s),
        phase(m.app_cpu_pre, 0.5 * m.app_cpu_post, 0.0, 1, s),
        phase(m.db_cpu_browse, 0.0, 0.0, 0, s),
    };
    // Thread-held delays scale with work_scale but not per-class heaviness
    // (protocol time does not grow with payload size here).
    c.tiers[0].pure_delay = m.web_delay * ws;
    c.tiers[1].pure_delay = m.app_delay * ws;
    c.tiers[2].pure_delay = svc_b_delay * ws;
    c.tiers[3].pure_delay = m.db_delay * ws;
    return c;
  };
  std::vector<RequestClass> classes;
  classes.push_back(make_class("Compose", 4.0, 1.0));
  classes.push_back(make_class("Inspect", 2.0, 0.7));
  classes.push_back(make_class("Aggregate", 1.0, 1.5));
  scenario.mix = RequestMix{std::move(classes)};

  // ---- framework wiring: per-node SCT targets ----
  FrameworkConfig config;
  config.targets.thread_adapt_tiers = {1, 2};
  config.targets.conn_adapt = {{1, 3}, {2, 3}};
  config.controller.tick = 1.0;
  config.controller.periodic_adapt = 10.0;
  config.estimator.window = 180.0;
  config.estimator.refresh = 5.0;
  // Analytic profile so DCM (offline-trained) runs on this topology: the
  // per-node Q_lower from the calibrated demands.
  const double db_rt = m.db_cpu_browse + m.db_delay;
  config.dcm_profile.tier_optimal_concurrency = {
      {1, analytic_optimum(m.app_cpu_pre + m.app_cpu_post,
                           m.app_delay + 2.0 * db_rt, 1)},
      {2, analytic_optimum(m.app_cpu_pre + 0.5 * m.app_cpu_post,
                           svc_b_delay + db_rt, 1)},
      {3, analytic_optimum(m.db_cpu_browse, m.db_delay, 1)},
  };
  // Vertical-Robust's default managed set {1, 2} already names SvcA/SvcB.
  scenario.framework = std::move(config);
  return scenario;
}

GraphScenario make_cache_scenario(const ScenarioParams& base) {
  GraphScenario scenario;
  scenario.name = "cache";
  scenario.base = base;

  const MixParams& m = base.mix;
  const double ws = base.work_scale;

  // Memcached-like lookup demands (no MixParams analog; local calibration).
  const double cache_cpu = 0.05e-3;
  const double cache_delay = 0.50e-3;
  const double db_cpu = 0.20e-3;  // uncached queries are heavier than the
                                  // chain's browse queries

  ServiceGraphConfig graph;
  graph.seed = base.seed ^ 0x77;
  GraphNodeConfig frontend =
      make_node("Frontend", base.seed ^ 0x11, base.app_contention,
                base.app_threads, base.app_dbconn, 1, 1, 6, base);
  frontend.route = {RouteStage{{{1}}}};
  GraphNodeConfig cache =
      make_node("Cache", base.seed ^ 0x22, base.web_contention,
                base.db_threads, base.app_dbconn, 1, 1, 4, base);
  cache.route = {RouteStage{{{2}}}};
  cache.cache.enabled = true;
  cache.cache.base_hit_ratio = 0.85;
  cache.cache.capacity = 1.0;
  cache.cache.working_set = 1.0;
  cache.cache.churn_period = 240.0;
  cache.cache.churn_amplitude = 0.8;
  GraphNodeConfig db = make_node("Db", base.seed ^ 0x33, base.db_contention,
                                 base.db_threads, 0, 1, 1, 5, base);
  graph.nodes = {frontend, cache, db};
  scenario.graph = std::move(graph);

  auto make_class = [&](const std::string& name, double weight,
                        double heaviness) {
    RequestClass c;
    c.name = name;
    c.weight = weight;
    c.demand_cv = m.demand_cv;
    const double s = ws * heaviness;
    c.tiers = {
        phase(m.app_cpu_pre, m.app_cpu_post, 0.0, 2, s),  // two lookups
        phase(cache_cpu, 0.0, 0.0, 1, s),  // on miss: one backend query
        phase(db_cpu, 0.0, 0.0, 0, s),
    };
    c.tiers[0].pure_delay = m.app_delay * ws;
    c.tiers[1].pure_delay = cache_delay * ws;
    c.tiers[2].pure_delay = m.db_delay * ws;
    return c;
  };
  std::vector<RequestClass> classes;
  classes.push_back(make_class("Read", 4.0, 1.0));
  classes.push_back(make_class("Scan", 1.0, 1.4));
  classes.push_back(make_class("Peek", 3.0, 0.7));
  scenario.mix = RequestMix{std::move(classes)};

  FrameworkConfig config;
  config.targets.thread_adapt_tiers = {0};
  config.targets.conn_adapt = {{0, 1}, {1, 2}};
  config.controller.tick = 1.0;
  config.controller.periodic_adapt = 10.0;
  config.estimator.window = 180.0;
  config.estimator.refresh = 5.0;
  const double cache_rt = cache_cpu + cache_delay;
  const double db_rt = db_cpu + m.db_delay;
  // At the base hit ratio ~15% of lookups continue into the Db; the
  // frontend's thread-held wait per lookup reflects that blend.
  const double lookup_wait = cache_rt + 0.15 * db_rt;
  config.dcm_profile.tier_optimal_concurrency = {
      {0, analytic_optimum(m.app_cpu_pre + m.app_cpu_post,
                           m.app_delay + 2.0 * lookup_wait, 1)},
      {1, analytic_optimum(cache_cpu, cache_delay + 0.15 * db_rt, 1)},
      {2, analytic_optimum(db_cpu, m.db_delay, 1)},
  };
  config.vertical.tiers = {0, 2};  // entitlement on the CPU-bound nodes
  scenario.framework = std::move(config);
  return scenario;
}

GraphScenario make_linear_scenario(const ScenarioParams& base) {
  GraphScenario scenario;
  scenario.name = "linear";
  scenario.base = base;

  const SystemConfig chain = base.system_config();
  ServiceGraphConfig graph;
  graph.seed = base.seed ^ 0x77;  // no cache node ever draws from it
  for (std::size_t i = 0; i < chain.tiers.size(); ++i) {
    GraphNodeConfig node;
    node.tier = chain.tiers[i];
    node.initial_vms = chain.initial_vms[i];
    if (i + 1 < chain.tiers.size()) {
      node.route = {RouteStage{{{i + 1}}}};
    }
    graph.nodes.push_back(std::move(node));
  }
  scenario.graph = std::move(graph);
  scenario.mix = base.make_mix();
  scenario.framework = make_framework_config(base);
  return scenario;
}

}  // namespace conscale
