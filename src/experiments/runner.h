// Experiment runners: assemble simulation + system + workload + framework,
// run, and extract the series each figure/table needs.
//
// Two families:
//   run_scaling(...)          the §V evaluation runs (Fig 1/10/11, Table I):
//                             a bursty trace drives a 1/1/1 system managed by
//                             one of the three scaling frameworks.
//   run_concurrency_sweep(...) / collect_scatter(...)
//                             the §II-B / §III profiling experiments
//                             (Fig 3/5/6/7): controlled-concurrency stress of
//                             one target tier, with fine-grained measurement.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/run_context.h"
#include "conscale/framework.h"
#include "experiments/scenario.h"
#include "faults/injector.h"
#include "metrics/monitor.h"
#include "sct/estimator.h"
#include "workload/trace.h"

namespace conscale {

// ---------------------------------------------------------------------------
// Scaling experiments (the evaluation section)
// ---------------------------------------------------------------------------

struct ScalingRunOptions {
  SimDuration duration = 720.0;  ///< §V: 12-minute runs
  /// Dataset scale applied to the live mix (≠1 models the system-state drift
  /// of Fig 11: DCM trained on one dataset, run on another).
  double runtime_dataset_scale = 1.0;
  /// Overrides for the framework; absent fields use defaults.
  std::optional<FrameworkConfig> framework_config;
  MonitoringParams monitoring;
  /// Drive the system with Markov-session users (SessionModel::rubbos_browse)
  /// instead of i.i.d. class draws with exponential think time. Sessions add
  /// the short-range correlation of real navigation; the population still
  /// tracks the trace.
  bool session_workload = false;
  /// Deterministic fault schedule replayed against the run (src/faults).
  /// Empty (the default) injects nothing and leaves the run byte-identical
  /// to one executed without the fault subsystem.
  FaultPlan faults;
  /// Per-run execution context (log label/level/sink). Default-constructed
  /// it behaves exactly like the process-wide Logger; the parallel runner
  /// sets a label per run so concurrent log lines stay attributable. The
  /// options object must outlive the run (it always does: run_scaling takes
  /// it by reference for the whole run).
  RunContext context;
};

struct ScalingRunResult {
  std::string framework_name;  ///< display name ("ConScale")
  std::string framework_key;   ///< registry key ("conscale")
  std::string trace_name;
  /// The controller's diagnostic counter map (generic: whatever the plug-in
  /// reports — DecisionController's scale_outs/scale_ins/adapts/stale_skips,
  /// the zoo controllers' own keys).
  ControllerCounters controller_counters;
  // End-to-end timelines (1 s), straight from the warehouse.
  std::vector<SystemSample> system;
  std::map<std::string, std::vector<TierSample>> tiers;
  std::vector<ScalingEvent> events;
  std::vector<ConcurrencyEstimatorService::HistoryEntry> sct_history;
  // Client-perceived response-time distribution for the whole run [ms].
  double mean_rt_ms = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double max_rt_ms = 0.0;
  /// Fraction of requests answered within 500 ms — the paper's "required
  /// for most web applications" bound (§V, citing Dean & Barroso).
  double sla_500ms = 0.0;
  std::uint64_t requests_issued = 0;
  std::uint64_t requests_completed = 0;
  /// Requests shed by admission control. Always zero for linear-chain runs
  /// (NTierSystem has no admission path); service-graph runs with shedding
  /// enabled report the count here (see experiments/graph_runner.h).
  std::uint64_t requests_rejected = 0;
  /// Departure/abort hooks seen without a matching admission, summed over
  /// every 50 ms aggregator. Always zero in a correct run — a nonzero value
  /// means a hook-accounting bug is skewing the concurrency integral, and
  /// tests assert on it rather than letting it silently shave Q.
  std::uint64_t hook_underflows = 0;
  // ---- Fault-injection outcome (all zero / empty in fault-free runs) ----
  FaultInjectorStats fault_stats;
  std::vector<FaultWindow> fault_windows;
  /// Canonical text of the injected plan ("" when none) — a result names
  /// the perturbations that produced it.
  std::string fault_plan_text;
  /// Requests errored by VM crashes, summed over every server.
  std::uint64_t requests_aborted = 0;
  /// Samples discarded by monitoring dropouts.
  std::uint64_t dropped_samples = 0;
  /// The full warehouse, for figure-specific drill-downs (per-server 50 ms
  /// series, e.g. Fig 5's MySQL monitoring).
  std::shared_ptr<MetricsWarehouse> warehouse;
};

/// Default framework config for a scenario: adapts the app-tier thread pool
/// and the app->db connection pool; DCM profile must be supplied by the
/// caller when running "dcm" (see train_dcm_profile).
FrameworkConfig make_framework_config(const ScenarioParams& params);

/// `framework` is a controller-registry reference — "ec2", "conscale",
/// "pi(target_ms=250)", ... (see conscale/registry.h). Unknown names abort
/// with the registered list.
ScalingRunResult run_scaling(const ScenarioParams& params,
                             const WorkloadTrace& trace,
                             const std::string& framework,
                             const ScalingRunOptions& options = {});

/// Convenience: build the trace from a kind with the scenario's user scale.
ScalingRunResult run_scaling(const ScenarioParams& params, TraceKind trace,
                             const std::string& framework,
                             const ScalingRunOptions& options = {});

// ---------------------------------------------------------------------------
// Profiling experiments (motivation + model sections)
// ---------------------------------------------------------------------------

struct SweepOptions {
  SimDuration settle = 4.0;    ///< discard while the pipeline fills
  SimDuration measure = 20.0;  ///< measurement window per level
  std::size_t fixed_app_vms = 1;
  std::size_t fixed_db_vms = 1;
};

struct SweepPoint {
  int concurrency = 0;       ///< configured level (threads = pool = users)
  double throughput = 0.0;   ///< target-tier completions/s (queries/s for DB)
  double mean_rt_ms = 0.0;   ///< target-tier response time
};

/// Fig 3-style controlled sweep: for each level K, pin the target tier's
/// concurrency to K (K zero-think users, pools sized to K) and measure the
/// target tier's throughput and in-server response time.
std::vector<SweepPoint> run_concurrency_sweep(
    const ScenarioParams& params, std::size_t target_tier,
    const std::vector<int>& levels, const SweepOptions& options = {});

struct ScatterRunOptions {
  SimDuration duration = 120.0;
  double max_users = 120.0;  ///< ramp peak (pre work_scale compression)
  SimDuration fine_period = 0.050;
  std::size_t fixed_app_vms = 1;
  std::size_t fixed_db_vms = 1;
  SctParams sct;
  /// Per-run execution context; see ScalingRunOptions::context.
  RunContext context;
};

struct ScatterRunResult {
  ScatterSet scatter;
  std::vector<StagePoint> stages;
  std::optional<RationalRange> range;
  /// Raw 50 ms samples of the target tier's first server (scatter plots).
  std::vector<IntervalSample> raw_samples;
};

/// Fig 6/7-style run: ramp the offered concurrency through the target
/// tier's whole range, collect 50 ms samples, and run the SCT estimation.
ScatterRunResult collect_scatter(const ScenarioParams& params,
                                 std::size_t target_tier,
                                 const ScatterRunOptions& options = {});

/// "Offline training" for DCM: profiles the app and db tiers under the given
/// (training!) scenario and returns the per-tier optima the offline model
/// would recommend. Fig 11 then runs it under *different* conditions.
DcmProfile train_dcm_profile(const ScenarioParams& params);

}  // namespace conscale
