#include "experiments/report.h"

#include <cstdio>
#include <ostream>

#include "common/ascii_chart.h"
#include "common/csv.h"

namespace conscale {

namespace {

Series series_from_system(const std::vector<SystemSample>& samples,
                          const std::string& name, double (*field)(const SystemSample&)) {
  Series s;
  s.name = name;
  s.x.reserve(samples.size());
  s.y.reserve(samples.size());
  for (const auto& sample : samples) {
    s.x.push_back(sample.t);
    s.y.push_back(field(sample));
  }
  return s;
}

}  // namespace

void print_performance_timeline(std::ostream& out, const std::string& title,
                                const ScalingRunResult& result) {
  out << "== " << title << " ==\n";
  Series rt = series_from_system(result.system, "response time [ms]",
                                 [](const SystemSample& s) { return s.mean_rt * 1e3; });
  Series tp = series_from_system(result.system, "throughput [reqs/s]",
                                 [](const SystemSample& s) { return s.throughput; });
  ChartOptions rt_options;
  rt_options.x_label = "Timeline [s]";
  rt_options.y_label = "Response Time [ms]";
  rt_options.height = 14;
  out << render_lines({rt}, rt_options);
  ChartOptions tp_options;
  tp_options.x_label = "Timeline [s]";
  tp_options.y_label = "Throughput [reqs/s]";
  tp_options.height = 14;
  out << render_lines({tp}, tp_options);
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "  %s on '%s': mean=%.0fms p50=%.0fms p95=%.0fms p99=%.0fms "
                "max=%.0fms completed=%llu\n",
                result.framework_name.c_str(), result.trace_name.c_str(),
                result.mean_rt_ms, result.p50_ms, result.p95_ms, result.p99_ms,
                result.max_rt_ms,
                static_cast<unsigned long long>(result.requests_completed));
  out << buf;
}

void print_scaling_timeline(std::ostream& out, const std::string& title,
                            const ScalingRunResult& result) {
  out << "== " << title << " ==\n";
  std::vector<Series> cpu_series;
  for (const auto& [tier, samples] : result.tiers) {
    Series s;
    s.name = tier + " CPU [%]";
    for (const auto& sample : samples) {
      s.x.push_back(sample.t);
      s.y.push_back(sample.avg_cpu_utilization * 100.0);
    }
    cpu_series.push_back(std::move(s));
  }
  Series vms = series_from_system(result.system, "# of VMs",
                                  [](const SystemSample& s) {
                                    return static_cast<double>(s.total_vms);
                                  });
  ChartOptions cpu_options;
  cpu_options.x_label = "Timeline [s]";
  cpu_options.y_label = "AVG CPU Util. [%]  (threshold 80)";
  cpu_options.y_max = 100.0;
  cpu_options.height = 14;
  out << render_lines(cpu_series, cpu_options);
  ChartOptions vm_options;
  vm_options.x_label = "Timeline [s]";
  vm_options.y_label = "Total number of VMs [#]";
  vm_options.height = 10;
  out << render_lines({vms}, vm_options);
}

void print_scatter_analysis(std::ostream& out, const std::string& title,
                            const ScatterRunResult& result) {
  out << "== " << title << " ==\n";
  Series points;
  points.name = "50ms samples (TP vs Q)";
  for (const auto& sample : result.raw_samples) {
    if (sample.concurrency < 0.5) continue;
    points.x.push_back(sample.concurrency);
    points.y.push_back(sample.throughput);
  }
  ChartOptions options;
  options.x_label = "Concurrency [#]";
  options.y_label = "Throughput [reqs/s]";
  options.height = 16;
  out << render_scatter(points, options);
  if (result.range) {
    char buf[192];
    std::snprintf(buf, sizeof(buf),
                  "  rational range [Q_lower=%d, Q_upper=%d], TPmax=%.0f/s, "
                  "optimal=%d, descending %s, %zu buckets / %zu samples\n",
                  result.range->q_lower, result.range->q_upper,
                  result.range->tp_max, result.range->optimal,
                  result.range->descending_observed ? "observed"
                                                    : "not observed",
                  result.range->buckets_used, result.range->samples_used);
    out << buf;
  } else {
    out << "  (not enough dense samples for an SCT estimate)\n";
  }
  if (!result.stages.empty()) {
    out << "  stages:";
    SctStage last = result.stages.front().stage;
    out << " [" << to_string(last) << " from Q=" << result.stages.front().q;
    for (const auto& p : result.stages) {
      if (p.stage != last) {
        out << "] [" << to_string(p.stage) << " from Q=" << p.q;
        last = p.stage;
      }
    }
    out << "]\n";
  }
}

void print_sweep(std::ostream& out, const std::string& title,
                 const std::vector<SweepPoint>& points) {
  out << "== " << title << " ==\n";
  Series tp, rt;
  tp.name = "Throughput";
  rt.name = "Response Time [ms]";
  for (const auto& p : points) {
    tp.x.push_back(p.concurrency);
    tp.y.push_back(p.throughput);
    rt.x.push_back(p.concurrency);
    rt.y.push_back(p.mean_rt_ms);
  }
  ChartOptions tp_options;
  tp_options.x_label = "Concurrency [#]";
  tp_options.y_label = "Throughput [requests/s]";
  tp_options.height = 12;
  out << render_lines({tp}, tp_options);
  ChartOptions rt_options;
  rt_options.x_label = "Concurrency [#]";
  rt_options.y_label = "Response Time [ms]";
  rt_options.height = 10;
  out << render_lines({rt}, rt_options);
  out << "  concurrency:";
  for (const auto& p : points) out << ' ' << p.concurrency;
  out << "\n  throughput: ";
  char buf[32];
  for (const auto& p : points) {
    std::snprintf(buf, sizeof(buf), " %.0f", p.throughput);
    out << buf;
  }
  out << "\n  rt[ms]:     ";
  for (const auto& p : points) {
    std::snprintf(buf, sizeof(buf), " %.1f", p.mean_rt_ms);
    out << buf;
  }
  out << '\n';
}

void print_tail_table(std::ostream& out, const std::string& title,
                      const std::vector<TailRow>& rows) {
  out << "== " << title << " ==\n";
  char buf[192];
  std::snprintf(buf, sizeof(buf), "  %-18s %-18s %10s %10s\n", "Framework",
                "Trace", "p95 [ms]", "p99 [ms]");
  out << buf;
  for (const auto& row : rows) {
    std::snprintf(buf, sizeof(buf), "  %-18s %-18s %10.0f %10.0f\n",
                  row.framework.c_str(), row.trace.c_str(), row.p95_ms,
                  row.p99_ms);
    out << buf;
  }
}

void print_events(std::ostream& out, const std::vector<ScalingEvent>& events) {
  out << "  scaling events:\n";
  char buf[160];
  for (const auto& e : events) {
    std::snprintf(buf, sizeof(buf), "    t=%6.1fs  %-8s %-10s %g\n", e.t,
                  e.tier.c_str(), e.action.c_str(), e.value);
    out << buf;
  }
}

void dump_system_csv(const std::string& path, const ScalingRunResult& result) {
  CsvWriter csv(path);
  csv.header({"t", "throughput_rps", "mean_rt_ms", "max_rt_ms", "total_vms"});
  for (const auto& s : result.system) {
    csv.row({s.t, s.throughput, s.mean_rt * 1e3, s.max_rt * 1e3,
             static_cast<double>(s.total_vms)});
  }
}

void dump_scatter_csv(const std::string& path, const ScatterRunResult& result) {
  CsvWriter csv(path);
  csv.header({"t", "concurrency", "throughput", "mean_rt_ms"});
  for (const auto& s : result.raw_samples) {
    csv.row({s.t_end, s.concurrency, s.throughput, s.mean_rt * 1e3});
  }
}

void dump_fault_windows_csv(const std::string& path,
                            const ScalingRunResult& result) {
  CsvWriter csv(path);
  csv.header({"kind", "start", "end", "tier"});
  char buffer[64];
  for (const auto& w : result.fault_windows) {
    std::snprintf(buffer, sizeof(buffer), "%.6g", w.start);
    std::string start = buffer;
    std::snprintf(buffer, sizeof(buffer), "%.6g", w.end);
    std::string end = buffer;
    csv.raw_row({to_string(w.kind), start, end, w.tier});
  }
}

void dump_counters_csv(const std::string& path,
                       const std::vector<ScalingRunResult>& results) {
  CsvWriter csv(path);
  csv.header({"controller", "trace", "counter", "value"});
  for (const auto& result : results) {
    for (const auto& [counter, value] : result.controller_counters) {
      csv.raw_row({result.framework_key, result.trace_name, counter,
                   std::to_string(value)});
    }
  }
}

}  // namespace conscale
