// Parallel experiment fan-out: run independent simulation runs on a bounded
// thread pool.
//
// The paper's evaluation (§V) is a grid of independent runs — framework ×
// trace × seed × option set — and each run is a fully self-contained unit
// (its Simulation owns the event arena, every component logs through the
// run's RunContext, and there is no mutable global state on the run path),
// so runs are thread-safe by isolation. RunSet exploits exactly that:
// N worker threads pull specs off a shared counter, and results land in
// spec order regardless of completion order. Results are bit-for-bit
// identical to the serial path — each run computes from its own seeds on
// its own thread; the fan-out only changes wall-clock interleaving — and
// `deterministic = true` re-runs every spec serially and asserts that.
//
// For fan-out that does not fit the RunSpec shape (scatter collections,
// ad-hoc sweeps), `parallel_map` runs an arbitrary index → value function
// with the same pool, ordering, and error semantics.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "experiments/runner.h"

namespace conscale {

/// Worker threads used when jobs == 0 ("auto"): the hardware concurrency,
/// at least 1.
std::size_t default_parallel_jobs();

namespace detail {
/// Runs body(i) for every i in [0, n) on up to `jobs` threads (jobs == 0 =
/// auto; jobs == 1 or n <= 1 runs inline with no threads). If any body
/// throws, every remaining index still executes, then the exception of the
/// lowest failing index is rethrown on the caller's thread.
void parallel_for(std::size_t n, std::size_t jobs,
                  const std::function<void(std::size_t)>& body);
}  // namespace detail

/// Maps fn over [0, n) with up to `jobs` worker threads and returns results
/// in index order. T must be default-constructible and movable.
template <typename T>
std::vector<T> parallel_map(std::size_t n, std::size_t jobs,
                            const std::function<T(std::size_t)>& fn) {
  std::vector<T> results(n);
  detail::parallel_for(n, jobs, [&](std::size_t i) { results[i] = fn(i); });
  return results;
}

/// One cell of the evaluation grid: everything run_scaling needs.
struct RunSpec {
  /// Log label for the run; empty derives "<framework display name>/<trace>".
  std::string label;
  ScenarioParams params;
  TraceKind trace = TraceKind::kLargeVariations;
  /// Controller-registry reference ("ec2", "conscale", "pi(kp=20)", ...).
  std::string framework = "conscale";
  ScalingRunOptions options;
};

struct RunSetOptions {
  /// Worker threads; 0 = one per hardware thread, 1 = serial (no threads
  /// spawned).
  std::size_t jobs = 0;
  /// Assertion mode: after the parallel pass, re-run every spec serially
  /// and require bit-identical results (timelines, events, percentiles).
  /// Doubles the cost; meant for tests and CI smoke runs.
  bool deterministic = false;
};

class RunSet {
 public:
  RunSet() = default;
  explicit RunSet(RunSetOptions options) : options_(options) {}

  /// Executes every spec and returns results in spec order. Rethrows the
  /// first (by spec index) exception after all workers finish. With
  /// options().deterministic set, throws std::logic_error if any parallel
  /// result differs from its serial re-run.
  std::vector<ScalingRunResult> run(const std::vector<RunSpec>& specs) const;

  /// Executes a single spec on the calling thread (the unit the pool runs).
  static ScalingRunResult run_one(const RunSpec& spec);

  const RunSetOptions& options() const { return options_; }

 private:
  RunSetOptions options_;
};

/// True when two results are observably identical: names, every timeline
/// sample, scaling events, SCT history, and the client-side distribution
/// stats — i.e. everything the reports and JSON/CSV exporters read. On
/// mismatch, `diff` (when non-null) receives a one-line description of the
/// first difference.
bool results_equivalent(const ScalingRunResult& a, const ScalingRunResult& b,
                        std::string* diff = nullptr);

}  // namespace conscale
