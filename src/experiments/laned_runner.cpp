#include "experiments/laned_runner.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "cluster/lane_gateway.h"
#include "metrics/shard_stats.h"
#include "simcore/lanes/placement.h"
#include "workload/session_shard.h"

namespace conscale {

namespace {

/// The cell map of one laned run. For the client-edge layout only `cells`
/// is meaningful (everything else keeps its zero default: system on lane 0,
/// shards round-robin via shard_lane). For the tier-laned layout it carries
/// the full placement: cell 0 = control plane, cells 1..C = tier clusters
/// from TierLanePlacement, cells C+1.. = one per session shard.
struct CellPlan {
  bool tiered = false;
  TierLaneLayout layout;  ///< tier -> cell, control on cell 0
  /// Distinct tier->tier edges (both directions implied), tier indices.
  std::vector<std::pair<std::size_t, std::size_t>> edges;
  std::size_t cells = 1;
  std::size_t entry_cell = 0;       ///< gateway + front tier
  std::size_t first_shard_cell = 0; ///< shard j lives on first_shard_cell + j
  std::size_t shard_count = 0;
  std::string summary;
};

std::size_t resolve_shard_count(const ScenarioParams& params,
                                const LanedRunOptions& options,
                                bool* autotuned) {
  if (options.shards > 0) {
    *autotuned = false;
    return options.shards;
  }
  *autotuned = true;
  return autotune_shards(params.scaled_users(params.max_users),
                         params.think_time);
}

/// Packs the tiers into cells and lays the full cell map out around them.
CellPlan plan_tier_cells(const std::vector<std::string>& names,
                         const std::vector<double>& weights,
                         std::vector<std::pair<std::size_t, std::size_t>> edges,
                         SimDuration lan_delay, std::size_t shard_count) {
  lanes::TierLanePlacement placement;
  for (std::size_t i = 0; i < names.size(); ++i) {
    placement.add_node(names[i], weights[i]);
  }
  for (const auto& edge : edges) {
    placement.add_edge(edge.first, edge.second, lan_delay);
  }
  const lanes::LanePlan plan = placement.plan(/*min_cut_delay=*/lan_delay);

  CellPlan cp;
  cp.tiered = true;
  cp.layout.control_lane = 0;
  cp.layout.lane_of_tier.reserve(names.size());
  for (std::size_t lane : plan.lane_of) {
    cp.layout.lane_of_tier.push_back(1 + lane);
  }
  cp.edges = std::move(edges);
  cp.entry_cell = cp.layout.lane_of_tier.front();
  cp.first_shard_cell = 1 + plan.lane_count;
  cp.shard_count = shard_count;
  cp.cells = cp.first_shard_cell + shard_count;
  cp.summary = "control + " + plan.summary(names) + " + " +
               std::to_string(shard_count) + " shard cell(s)";
  return cp;
}

/// Declares every engine channel a tier-laned run posts across: the LAN hop
/// on each cross-cell tier edge (both directions), the vm-ready hop from
/// each tier cell to the control cell, and the client network between the
/// entry cell and every shard cell. declare_channel keeps the minimum on
/// re-declaration, so duplicate edges are harmless.
void declare_cell_channels(lanes::LaneEngine& engine, const CellPlan& cp,
                           SimDuration lan_delay, SimDuration net_delay) {
  for (const auto& edge : cp.edges) {
    const std::size_t from = cp.layout.lane_of_tier[edge.first];
    const std::size_t to = cp.layout.lane_of_tier[edge.second];
    if (from == to) continue;
    engine.declare_channel(from, to, lan_delay);
    engine.declare_channel(to, from, lan_delay);
  }
  for (std::size_t cell : cp.layout.lane_of_tier) {
    if (cell != cp.layout.control_lane) {
      engine.declare_channel(cell, cp.layout.control_lane, lan_delay);
    }
  }
  for (std::size_t j = 0; j < cp.shard_count; ++j) {
    const std::size_t cell = cp.first_shard_cell + j;
    engine.declare_channel(cp.entry_cell, cell, net_delay);
    engine.declare_channel(cell, cp.entry_cell, net_delay);
  }
}

lanes::LaneEngine::Options make_engine_options(
    const lanes::LookaheadAnalysis& analysis, const LanedRunOptions& options,
    const CellPlan& cp) {
  lanes::LaneEngine::Options eo;
  eo.lanes = cp.cells;
  eo.lookahead = analysis.window();
  if (!cp.tiered) return eo;  // client-edge layout: lanes == threads, TW
  eo.threads = options.tier_lanes;
  switch (options.protocol) {
    case LanedRunOptions::ProtocolChoice::kTimeWindow:
      eo.protocol = lanes::LaneEngine::Protocol::kTimeWindow;
      break;
    case LanedRunOptions::ProtocolChoice::kNullMessage:
      eo.protocol = lanes::LaneEngine::Protocol::kNullMessage;
      break;
    case LanedRunOptions::ProtocolChoice::kAuto:
      eo.protocol = analysis.recommended();
      break;
  }
  // Anti-flood floor: half a window. Suppressing sub-floor EOT advances
  // caps null traffic without affecting results (scheduling-only, see
  // lane_engine.h) — the rescue pass re-announces when a lane would starve.
  eo.null_floor = 0.5 * analysis.window();
  eo.serialize_lane0 = true;
  return eo;
}

void validate_options(const char* who, const LanedRunOptions& options) {
  if (options.base.session_workload) {
    throw std::invalid_argument(std::string(who) +
                                ": session workloads are not supported on "
                                "lanes");
  }
  if (options.tier_lanes > 0) {
    if (!options.base.faults.empty()) {
      throw std::invalid_argument(
          std::string(who) +
          ": fault plans are not supported with tier_lanes (the injector "
          "mutates tier internals from the control cell without a channel)");
    }
    if (!(options.lan_delay > 0.0)) {
      throw std::invalid_argument(std::string(who) +
                                  ": tier_lanes needs lan_delay > 0");
    }
  }
}

/// The LookaheadAnalysis channel the gateway terminates must be the delay
/// the gateway (and the shards) actually model — the engine's safety rests
/// on it, so drift is a logic error, not a tuning knob.
void validate_net_delay(const lanes::LookaheadAnalysis& analysis,
                        const LaneGateway& gateway) {
  for (const lanes::LookaheadSource& source : analysis.sources()) {
    if (!source.is_channel || source.name != "client->frontend net") continue;
    if (source.delay == gateway.net_delay()) return;
    throw std::logic_error(
        "laned runner: gateway net_delay diverged from the analyzed "
        "client channel delay");
  }
  throw std::logic_error(
      "laned runner: lookahead analysis lost the client channel");
}

/// Builds the shard population for either runner. Shard seeds derive from
/// the same client seed the serial runners use (params.seed ^ 0xc11e) via
/// one splitmix-style draw per shard in index order — a function of
/// (seed, shard_index) only, never of the lane or thread count.
std::vector<std::unique_ptr<SessionShard>> make_shards(
    lanes::LaneEngine& engine, const ScenarioParams& params,
    const WorkloadTrace& trace, const RequestMix& mix, LaneGateway& gateway,
    const LanedRunOptions& options, const CellPlan& cp) {
  const std::size_t shard_count = cp.shard_count;
  Rng seeder(params.seed ^ 0xc11e);
  std::vector<std::unique_ptr<SessionShard>> shards;
  shards.reserve(shard_count);
  for (std::size_t i = 0; i < shard_count; ++i) {
    SessionShard::Params sp;
    sp.think_time_mean = params.think_time;
    sp.seed = seeder.next();
    sp.net_delay = options.net_delay;
    const std::size_t cell = cp.tiered ? cp.first_shard_cell + i
                                       : shard_lane(i, engine.lane_count());
    shards.push_back(std::make_unique<SessionShard>(
        engine, cell, i, shard_count, trace, mix, gateway,
        /*gateway_lane=*/cp.entry_cell, sp));
  }
  return shards;
}

void fill_client_stats(ScalingRunResult& run,
                       const std::vector<std::unique_ptr<SessionShard>>& shards,
                       const MonitoringAgent& monitor) {
  std::vector<const SessionShard*> ptrs;
  ptrs.reserve(shards.size());
  for (const auto& shard : shards) ptrs.push_back(shard.get());
  const ClientStats clients = merge_shard_stats(ptrs);
  const LogHistogram& rts = clients.response_times;
  run.mean_rt_ms = to_ms(rts.mean());
  run.p50_ms = to_ms(rts.percentile(50.0));
  run.p95_ms = to_ms(rts.percentile(95.0));
  run.p99_ms = to_ms(rts.percentile(99.0));
  run.max_rt_ms = to_ms(rts.max_recorded());
  run.sla_500ms = rts.fraction_below(0.5);
  run.requests_issued = clients.requests_issued;
  run.requests_completed = clients.requests_completed;
  run.requests_rejected = clients.requests_rejected;
  run.hook_underflows = monitor.hook_underflows();
}

void fill_info(LaneRunInfo* info, const lanes::LaneEngine& engine,
               const lanes::LookaheadAnalysis& analysis,
               const LanedRunOptions& options, const CellPlan& cp,
               bool shards_autotuned,
               const std::vector<std::unique_ptr<SessionShard>>& shards) {
  if (!info) return;
  info->active_sessions = 0;
  for (const auto& shard : shards) {
    info->active_sessions += shard->active_users();
  }
  info->stats = engine.stats();
  info->lookahead = engine.lookahead();
  info->protocol = engine.protocol();
  info->lookahead_summary = analysis.summary();
  info->lanes = engine.lane_count();
  info->threads = cp.tiered ? options.tier_lanes : engine.lane_count();
  info->shards = cp.shard_count;
  info->shards_autotuned = shards_autotuned;
  info->placement = cp.summary;
}

}  // namespace

std::size_t autotune_shards(double peak_sessions, double think_time_mean) {
  constexpr double kRequestsPerShardSecond = 300.0;
  const double think = std::max(think_time_mean, 1e-6);
  const double aggregate_rate = std::max(peak_sessions, 0.0) / think;
  const double shards = std::ceil(aggregate_rate / kRequestsPerShardSecond);
  if (!(shards >= 1.0)) return 1;
  if (shards >= 64.0) return 64;
  return static_cast<std::size_t>(shards);
}

lanes::LookaheadAnalysis analyze_lookahead(const ScenarioParams& params,
                                           const LanedRunOptions& options) {
  lanes::LookaheadAnalysis analysis;
  // The client<->frontend network, both directions — the only cross-lane
  // delay of the client-edge layout, and the widest channel of the
  // tier-laned one.
  analysis.add_source("client->frontend net", options.net_delay, true);
  analysis.add_source("frontend->client net", options.net_delay, true);
  if (options.tier_lanes > 0) {
    // Tier-laned: the LAN hop is a channel too. It is the minimum, so it
    // bounds the window; the net/LAN skew is what flips the recommendation
    // to null messages (per-channel bounds let the client edge run ahead of
    // the tight tier ring — see lookahead.h).
    analysis.add_source("tier->tier LAN hop", options.lan_delay, true);
    analysis.add_source("vm-ready LAN hop", options.lan_delay, true);
  }
  // Documented slack that never crosses a lane boundary: the scaling loop
  // stays local to the control lane.
  analysis.add_source("vm prep delay", params.vm_prep_delay, false);
  analysis.add_source("monitoring coarse period",
                      options.base.monitoring.coarse_period, false);
  return analysis;
}

ScalingRunResult run_scaling_laned(const ScenarioParams& params,
                                   TraceKind kind,
                                   const std::string& framework_ref,
                                   const LanedRunOptions& options,
                                   LaneRunInfo* info) {
  TraceParams tp;
  tp.duration = options.base.duration;
  tp.max_users = params.scaled_users(params.max_users);
  tp.seed = params.seed ^ 0xbeef;
  const WorkloadTrace trace = make_trace(kind, tp);
  return run_scaling_laned(params, trace, framework_ref, options, info);
}

ScalingRunResult run_scaling_laned(const ScenarioParams& params,
                                   const WorkloadTrace& trace,
                                   const std::string& framework_ref,
                                   const LanedRunOptions& options,
                                   LaneRunInfo* info) {
  validate_options("run_scaling_laned", options);
  bool shards_autotuned = false;
  const std::size_t shard_count =
      resolve_shard_count(params, options, &shards_autotuned);
  const lanes::LookaheadAnalysis analysis = analyze_lookahead(params, options);

  SystemConfig sys_config = params.system_config();
  CellPlan cp;
  if (options.tier_lanes > 0) {
    sys_config.lan_delay = options.lan_delay;
    std::vector<std::string> names;
    std::vector<double> weights;
    std::vector<std::pair<std::size_t, std::size_t>> edges;
    for (std::size_t i = 0; i < sys_config.tiers.size(); ++i) {
      names.push_back(sys_config.tiers[i].name);
      weights.push_back(static_cast<double>(sys_config.initial_vms[i]));
      if (i + 1 < sys_config.tiers.size()) edges.emplace_back(i, i + 1);
    }
    cp = plan_tier_cells(names, weights, std::move(edges), options.lan_delay,
                         shard_count);
  } else {
    cp.cells = std::max<std::size_t>(options.lanes, 1);
    cp.shard_count = shard_count;
  }

  lanes::LaneEngine engine(make_engine_options(analysis, options, cp));
  if (cp.tiered) {
    declare_cell_channels(engine, cp, options.lan_delay, options.net_delay);
  }
  Simulation& sim = engine.lane(0).sim();

  // From here the assembly mirrors run_scaling: same construction order,
  // same seed derivations, so control-lane state is identical run to run.
  RequestMix mix = params.make_mix();
  if (options.base.runtime_dataset_scale != 1.0) {
    mix.apply_dataset_scale(options.base.runtime_dataset_scale);
  }

  const RunContext* ctx = &options.base.context;
  std::unique_ptr<NTierSystem> system_ptr =
      cp.tiered ? std::make_unique<NTierSystem>(engine, sys_config, cp.layout,
                                                ctx)
                : std::make_unique<NTierSystem>(sim, sys_config, ctx);
  NTierSystem& system = *system_ptr;
  auto warehouse = std::make_shared<MetricsWarehouse>();
  MonitoringParams monitoring = options.base.monitoring;
  monitoring.fine_period *= params.work_scale;
  MonitoringAgent monitor(sim, system, *warehouse, monitoring, ctx);
  if (cp.tiered) {
    monitor.set_tier_sim_resolver(
        [&system](std::size_t tier) -> Simulation& {
          return system.tier_sim(tier);
        });
  }

  FrameworkConfig config = options.base.framework_config
                               ? *options.base.framework_config
                               : make_framework_config(params);
  ScalingFramework framework(sim, system, *warehouse, framework_ref, config,
                             ctx);

  // NTierSystem's submit has no rejection path; adapt it to the gateway's
  // outcome-aware shape.
  LaneGateway::SubmitFn submit =
      [&system](const RequestContext& request,
                std::function<void(RequestOutcome)> done) {
        system.submit(request, [done = std::move(done)] {
          done(RequestOutcome::kServed);
        });
      };
  LaneGateway::Params gateway_params;
  gateway_params.net_delay = options.net_delay;
  LaneGateway gateway(engine, cp.entry_cell, std::move(submit),
                      gateway_params);
  validate_net_delay(analysis, gateway);
  gateway.set_completion_hook(
      [&monitor](SimTime issued, double rt, const RequestClass&) {
        monitor.on_client_completion(issued, rt);
      });
  gateway.set_rejection_hook(
      [&monitor](SimTime at) { monitor.on_client_rejection(at); });

  const auto shards =
      make_shards(engine, params, trace, mix, gateway, options, cp);

  std::unique_ptr<FaultInjector> injector;
  if (!options.base.faults.empty()) {
    injector = std::make_unique<FaultInjector>(sim, system, warehouse.get(),
                                               options.base.faults, ctx);
    injector->arm();
  }

  engine.run(options.base.duration);

  ScalingRunResult result;
  result.framework_name = framework.name();
  result.framework_key = framework.key();
  result.trace_name = trace.name();
  result.controller_counters = framework.controller().counters();
  result.system = warehouse->system_series();
  for (std::size_t i = 0; i < system.tier_count(); ++i) {
    const std::string& name = system.tier(i).name();
    result.tiers[name] = warehouse->tier_series(name);
  }
  result.events = framework.all_events();
  if (auto* estimator = framework.estimator_service()) {
    result.sct_history = estimator->history();
  }
  fill_client_stats(result, shards, monitor);
  if (injector) {
    result.fault_stats = injector->stats();
    result.fault_windows = injector->windows();
    result.fault_plan_text = injector->plan().to_text();
    result.requests_aborted = system.total_aborted_requests();
    result.dropped_samples = warehouse->dropped_samples();
  }
  result.warehouse = std::move(warehouse);
  fill_info(info, engine, analysis, options, cp, shards_autotuned, shards);
  return result;
}

GraphRunResult run_graph_scaling_laned(const GraphScenario& scenario,
                                       TraceKind kind,
                                       const std::string& framework_ref,
                                       const LanedRunOptions& options,
                                       LaneRunInfo* info) {
  TraceParams tp;
  tp.duration = options.base.duration;
  tp.max_users = scenario.base.scaled_users(scenario.base.max_users);
  tp.seed = scenario.base.seed ^ 0xbeef;
  const WorkloadTrace trace = make_trace(kind, tp);
  return run_graph_scaling_laned(scenario, trace, framework_ref, options,
                                 info);
}

GraphRunResult run_graph_scaling_laned(const GraphScenario& scenario,
                                       const WorkloadTrace& trace,
                                       const std::string& framework_ref,
                                       const LanedRunOptions& options,
                                       LaneRunInfo* info) {
  validate_options("run_graph_scaling_laned", options);
  bool shards_autotuned = false;
  const std::size_t shard_count =
      resolve_shard_count(scenario.base, options, &shards_autotuned);
  const lanes::LookaheadAnalysis analysis =
      analyze_lookahead(scenario.base, options);

  topology::ServiceGraphConfig graph_config = scenario.graph;
  CellPlan cp;
  if (options.tier_lanes > 0) {
    graph_config.lan_delay = options.lan_delay;
    std::vector<std::string> names;
    std::vector<double> weights;
    std::vector<std::pair<std::size_t, std::size_t>> edges;
    for (std::size_t i = 0; i < graph_config.nodes.size(); ++i) {
      const topology::GraphNodeConfig& node = graph_config.nodes[i];
      names.push_back(node.tier.name);
      weights.push_back(static_cast<double>(node.initial_vms));
      for (const topology::RouteStage& stage : node.route) {
        for (const topology::GraphCall& call : stage.calls) {
          edges.emplace_back(i, call.node);
        }
      }
    }
    cp = plan_tier_cells(names, weights, std::move(edges), options.lan_delay,
                         shard_count);
  } else {
    cp.cells = std::max<std::size_t>(options.lanes, 1);
    cp.shard_count = shard_count;
  }

  lanes::LaneEngine engine(make_engine_options(analysis, options, cp));
  if (cp.tiered) {
    declare_cell_channels(engine, cp, options.lan_delay, options.net_delay);
  }
  Simulation& sim = engine.lane(0).sim();

  RequestMix mix = scenario.mix;
  if (options.base.runtime_dataset_scale != 1.0) {
    mix.apply_dataset_scale(options.base.runtime_dataset_scale);
  }

  const RunContext* ctx = &options.base.context;
  std::unique_ptr<topology::ServiceGraph> system_ptr =
      cp.tiered ? std::make_unique<topology::ServiceGraph>(
                      engine, graph_config, cp.layout, ctx)
                : std::make_unique<topology::ServiceGraph>(sim, graph_config,
                                                           ctx);
  topology::ServiceGraph& system = *system_ptr;
  auto warehouse = std::make_shared<MetricsWarehouse>();
  MonitoringParams monitoring = options.base.monitoring;
  monitoring.fine_period *= scenario.base.work_scale;
  MonitoringAgent monitor(sim, system, *warehouse, monitoring, ctx);
  if (cp.tiered) {
    monitor.set_tier_sim_resolver(
        [&system](std::size_t tier) -> Simulation& {
          return system.tier_sim(tier);
        });
  }

  FrameworkConfig config = options.base.framework_config
                               ? *options.base.framework_config
                               : scenario.framework;
  ScalingFramework framework(sim, system, *warehouse, framework_ref, config,
                             ctx);
  LatencyBreakdown breakdown(system);

  LaneGateway::SubmitFn submit =
      [&system](const RequestContext& request,
                std::function<void(RequestOutcome)> done) {
        system.submit(request, std::move(done));
      };
  LaneGateway::Params gateway_params;
  gateway_params.net_delay = options.net_delay;
  LaneGateway gateway(engine, cp.entry_cell, std::move(submit),
                      gateway_params);
  validate_net_delay(analysis, gateway);
  gateway.set_completion_hook(
      [&monitor](SimTime issued, double rt, const RequestClass&) {
        monitor.on_client_completion(issued, rt);
      });
  gateway.set_rejection_hook(
      [&monitor](SimTime at) { monitor.on_client_rejection(at); });

  const auto shards =
      make_shards(engine, scenario.base, trace, mix, gateway, options, cp);

  std::unique_ptr<FaultInjector> injector;
  if (!options.base.faults.empty()) {
    injector = std::make_unique<FaultInjector>(sim, system, warehouse.get(),
                                               options.base.faults, ctx);
    injector->arm();
  }

  engine.run(options.base.duration);

  GraphRunResult result;
  ScalingRunResult& run = result.run;
  run.framework_name = framework.name();
  run.framework_key = framework.key();
  run.trace_name = trace.name();
  run.controller_counters = framework.controller().counters();
  run.system = warehouse->system_series();
  for (std::size_t i = 0; i < system.tier_count(); ++i) {
    const std::string& name = system.tier(i).name();
    run.tiers[name] = warehouse->tier_series(name);
  }
  run.events = framework.all_events();
  if (auto* estimator = framework.estimator_service()) {
    run.sct_history = estimator->history();
  }
  fill_client_stats(run, shards, monitor);
  if (injector) {
    run.fault_stats = injector->stats();
    run.fault_windows = injector->windows();
    run.fault_plan_text = injector->plan().to_text();
    run.requests_aborted = system.total_aborted_requests();
    run.dropped_samples = warehouse->dropped_samples();
  }
  run.warehouse = std::move(warehouse);

  result.admission = system.admission_stats();
  for (std::size_t i = 0; i < system.tier_count(); ++i) {
    if (graph_config.nodes[i].cache.enabled) {
      result.caches.emplace_back(system.tier(i).name(),
                                 system.cache_stats(i));
    }
  }
  result.node_latency = breakdown.by_tier();
  fill_info(info, engine, analysis, options, cp, shards_autotuned, shards);
  return result;
}

}  // namespace conscale
