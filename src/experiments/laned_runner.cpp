#include "experiments/laned_runner.h"

#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "cluster/lane_gateway.h"
#include "metrics/shard_stats.h"
#include "workload/session_shard.h"

namespace conscale {

namespace {

/// Builds the shard population for either runner. Shard seeds derive from
/// the same client seed the serial runners use (params.seed ^ 0xc11e) via
/// one splitmix-style draw per shard in index order — a function of
/// (seed, shard_index) only, never of the lane count.
std::vector<std::unique_ptr<SessionShard>> make_shards(
    lanes::LaneEngine& engine, const ScenarioParams& params,
    const WorkloadTrace& trace, const RequestMix& mix, LaneGateway& gateway,
    const LanedRunOptions& options) {
  const std::size_t shard_count = std::max<std::size_t>(options.shards, 1);
  Rng seeder(params.seed ^ 0xc11e);
  std::vector<std::unique_ptr<SessionShard>> shards;
  shards.reserve(shard_count);
  for (std::size_t i = 0; i < shard_count; ++i) {
    SessionShard::Params sp;
    sp.think_time_mean = params.think_time;
    sp.seed = seeder.next();
    sp.net_delay = options.net_delay;
    shards.push_back(std::make_unique<SessionShard>(
        engine, shard_lane(i, engine.lane_count()), i, shard_count, trace,
        mix, gateway, /*gateway_lane=*/0, sp));
  }
  return shards;
}

void fill_client_stats(ScalingRunResult& run,
                       const std::vector<std::unique_ptr<SessionShard>>& shards,
                       const MonitoringAgent& monitor) {
  std::vector<const SessionShard*> ptrs;
  ptrs.reserve(shards.size());
  for (const auto& shard : shards) ptrs.push_back(shard.get());
  const ClientStats clients = merge_shard_stats(ptrs);
  const LogHistogram& rts = clients.response_times;
  run.mean_rt_ms = to_ms(rts.mean());
  run.p50_ms = to_ms(rts.percentile(50.0));
  run.p95_ms = to_ms(rts.percentile(95.0));
  run.p99_ms = to_ms(rts.percentile(99.0));
  run.max_rt_ms = to_ms(rts.max_recorded());
  run.sla_500ms = rts.fraction_below(0.5);
  run.requests_issued = clients.requests_issued;
  run.requests_completed = clients.requests_completed;
  run.requests_rejected = clients.requests_rejected;
  run.hook_underflows = monitor.hook_underflows();
}

void fill_info(LaneRunInfo* info, const lanes::LaneEngine& engine,
               const lanes::LookaheadAnalysis& analysis,
               const LanedRunOptions& options,
               const std::vector<std::unique_ptr<SessionShard>>& shards) {
  if (!info) return;
  info->active_sessions = 0;
  for (const auto& shard : shards) {
    info->active_sessions += shard->active_users();
  }
  info->stats = engine.stats();
  info->lookahead = engine.lookahead();
  info->protocol = analysis.recommended();
  info->lookahead_summary = analysis.summary();
  info->lanes = engine.lane_count();
  info->shards = std::max<std::size_t>(options.shards, 1);
}

}  // namespace

lanes::LookaheadAnalysis analyze_lookahead(const ScenarioParams& params,
                                           const LanedRunOptions& options) {
  lanes::LookaheadAnalysis analysis;
  // The only delays cross-lane messages traverse: the client<->frontend
  // network, both directions. Uniform by construction (star topology), so
  // the analysis recommends time-window barriers — see lookahead.h.
  analysis.add_source("client->frontend net", options.net_delay, true);
  analysis.add_source("frontend->client net", options.net_delay, true);
  // Documented slack that never crosses a lane boundary: lane 0 keeps the
  // whole scaling loop local.
  analysis.add_source("vm prep delay", params.vm_prep_delay, false);
  analysis.add_source("monitoring coarse period",
                      options.base.monitoring.coarse_period, false);
  return analysis;
}

ScalingRunResult run_scaling_laned(const ScenarioParams& params,
                                   TraceKind kind,
                                   const std::string& framework_ref,
                                   const LanedRunOptions& options,
                                   LaneRunInfo* info) {
  TraceParams tp;
  tp.duration = options.base.duration;
  tp.max_users = params.scaled_users(params.max_users);
  tp.seed = params.seed ^ 0xbeef;
  const WorkloadTrace trace = make_trace(kind, tp);
  return run_scaling_laned(params, trace, framework_ref, options, info);
}

ScalingRunResult run_scaling_laned(const ScenarioParams& params,
                                   const WorkloadTrace& trace,
                                   const std::string& framework_ref,
                                   const LanedRunOptions& options,
                                   LaneRunInfo* info) {
  if (options.base.session_workload) {
    throw std::invalid_argument(
        "run_scaling_laned: session workloads are not supported on lanes");
  }
  const lanes::LookaheadAnalysis analysis = analyze_lookahead(params, options);
  lanes::LaneEngine::Options engine_options;
  engine_options.lanes = std::max<std::size_t>(options.lanes, 1);
  engine_options.lookahead = analysis.window();
  lanes::LaneEngine engine(engine_options);
  Simulation& sim = engine.lane(0).sim();

  // From here the assembly mirrors run_scaling: same construction order,
  // same seed derivations, so lane-0 state is identical run to run.
  RequestMix mix = params.make_mix();
  if (options.base.runtime_dataset_scale != 1.0) {
    mix.apply_dataset_scale(options.base.runtime_dataset_scale);
  }

  const RunContext* ctx = &options.base.context;
  NTierSystem system(sim, params.system_config(), ctx);
  auto warehouse = std::make_shared<MetricsWarehouse>();
  MonitoringParams monitoring = options.base.monitoring;
  monitoring.fine_period *= params.work_scale;
  MonitoringAgent monitor(sim, system, *warehouse, monitoring, ctx);

  FrameworkConfig config = options.base.framework_config
                               ? *options.base.framework_config
                               : make_framework_config(params);
  ScalingFramework framework(sim, system, *warehouse, framework_ref, config,
                             ctx);

  // NTierSystem's submit has no rejection path; adapt it to the gateway's
  // outcome-aware shape.
  LaneGateway::SubmitFn submit =
      [&system](const RequestContext& request,
                std::function<void(RequestOutcome)> done) {
        system.submit(request, [done = std::move(done)] {
          done(RequestOutcome::kServed);
        });
      };
  LaneGateway::Params gateway_params;
  gateway_params.net_delay = options.net_delay;
  LaneGateway gateway(engine, 0, std::move(submit), gateway_params);
  gateway.set_completion_hook(
      [&monitor](SimTime issued, double rt, const RequestClass&) {
        monitor.on_client_completion(issued, rt);
      });
  gateway.set_rejection_hook(
      [&monitor](SimTime at) { monitor.on_client_rejection(at); });

  const auto shards =
      make_shards(engine, params, trace, mix, gateway, options);

  std::unique_ptr<FaultInjector> injector;
  if (!options.base.faults.empty()) {
    injector = std::make_unique<FaultInjector>(sim, system, warehouse.get(),
                                               options.base.faults, ctx);
    injector->arm();
  }

  engine.run(options.base.duration);

  ScalingRunResult result;
  result.framework_name = framework.name();
  result.framework_key = framework.key();
  result.trace_name = trace.name();
  result.controller_counters = framework.controller().counters();
  result.system = warehouse->system_series();
  for (std::size_t i = 0; i < system.tier_count(); ++i) {
    const std::string& name = system.tier(i).name();
    result.tiers[name] = warehouse->tier_series(name);
  }
  result.events = framework.all_events();
  if (auto* estimator = framework.estimator_service()) {
    result.sct_history = estimator->history();
  }
  fill_client_stats(result, shards, monitor);
  if (injector) {
    result.fault_stats = injector->stats();
    result.fault_windows = injector->windows();
    result.fault_plan_text = injector->plan().to_text();
    result.requests_aborted = system.total_aborted_requests();
    result.dropped_samples = warehouse->dropped_samples();
  }
  result.warehouse = std::move(warehouse);
  fill_info(info, engine, analysis, options, shards);
  return result;
}

GraphRunResult run_graph_scaling_laned(const GraphScenario& scenario,
                                       TraceKind kind,
                                       const std::string& framework_ref,
                                       const LanedRunOptions& options,
                                       LaneRunInfo* info) {
  TraceParams tp;
  tp.duration = options.base.duration;
  tp.max_users = scenario.base.scaled_users(scenario.base.max_users);
  tp.seed = scenario.base.seed ^ 0xbeef;
  const WorkloadTrace trace = make_trace(kind, tp);
  return run_graph_scaling_laned(scenario, trace, framework_ref, options,
                                 info);
}

GraphRunResult run_graph_scaling_laned(const GraphScenario& scenario,
                                       const WorkloadTrace& trace,
                                       const std::string& framework_ref,
                                       const LanedRunOptions& options,
                                       LaneRunInfo* info) {
  if (options.base.session_workload) {
    throw std::invalid_argument(
        "run_graph_scaling_laned: session workloads are not supported on "
        "lanes");
  }
  const lanes::LookaheadAnalysis analysis =
      analyze_lookahead(scenario.base, options);
  lanes::LaneEngine::Options engine_options;
  engine_options.lanes = std::max<std::size_t>(options.lanes, 1);
  engine_options.lookahead = analysis.window();
  lanes::LaneEngine engine(engine_options);
  Simulation& sim = engine.lane(0).sim();

  RequestMix mix = scenario.mix;
  if (options.base.runtime_dataset_scale != 1.0) {
    mix.apply_dataset_scale(options.base.runtime_dataset_scale);
  }

  const RunContext* ctx = &options.base.context;
  topology::ServiceGraph system(sim, scenario.graph, ctx);
  auto warehouse = std::make_shared<MetricsWarehouse>();
  MonitoringParams monitoring = options.base.monitoring;
  monitoring.fine_period *= scenario.base.work_scale;
  MonitoringAgent monitor(sim, system, *warehouse, monitoring, ctx);

  FrameworkConfig config = options.base.framework_config
                               ? *options.base.framework_config
                               : scenario.framework;
  ScalingFramework framework(sim, system, *warehouse, framework_ref, config,
                             ctx);
  LatencyBreakdown breakdown(system);

  LaneGateway::SubmitFn submit =
      [&system](const RequestContext& request,
                std::function<void(RequestOutcome)> done) {
        system.submit(request, std::move(done));
      };
  LaneGateway::Params gateway_params;
  gateway_params.net_delay = options.net_delay;
  LaneGateway gateway(engine, 0, std::move(submit), gateway_params);
  gateway.set_completion_hook(
      [&monitor](SimTime issued, double rt, const RequestClass&) {
        monitor.on_client_completion(issued, rt);
      });
  gateway.set_rejection_hook(
      [&monitor](SimTime at) { monitor.on_client_rejection(at); });

  const auto shards =
      make_shards(engine, scenario.base, trace, mix, gateway, options);

  std::unique_ptr<FaultInjector> injector;
  if (!options.base.faults.empty()) {
    injector = std::make_unique<FaultInjector>(sim, system, warehouse.get(),
                                               options.base.faults, ctx);
    injector->arm();
  }

  engine.run(options.base.duration);

  GraphRunResult result;
  ScalingRunResult& run = result.run;
  run.framework_name = framework.name();
  run.framework_key = framework.key();
  run.trace_name = trace.name();
  run.controller_counters = framework.controller().counters();
  run.system = warehouse->system_series();
  for (std::size_t i = 0; i < system.tier_count(); ++i) {
    const std::string& name = system.tier(i).name();
    run.tiers[name] = warehouse->tier_series(name);
  }
  run.events = framework.all_events();
  if (auto* estimator = framework.estimator_service()) {
    run.sct_history = estimator->history();
  }
  fill_client_stats(run, shards, monitor);
  if (injector) {
    run.fault_stats = injector->stats();
    run.fault_windows = injector->windows();
    run.fault_plan_text = injector->plan().to_text();
    run.requests_aborted = system.total_aborted_requests();
    run.dropped_samples = warehouse->dropped_samples();
  }
  run.warehouse = std::move(warehouse);

  result.admission = system.admission_stats();
  for (std::size_t i = 0; i < system.tier_count(); ++i) {
    if (scenario.graph.nodes[i].cache.enabled) {
      result.caches.emplace_back(system.tier(i).name(),
                                 system.cache_stats(i));
    }
  }
  result.node_latency = breakdown.by_tier();
  fill_info(info, engine, analysis, options, shards);
  return result;
}

}  // namespace conscale
