// Laned experiment runners: run_scaling / run_graph_scaling executed on the
// lane-partitioned PDES engine (src/simcore/lanes/, DESIGN.md §6.6).
//
// Partitioning: lane 0 hosts the entire serving system — NTierSystem or
// topology::ServiceGraph, warehouse, monitor, scaling framework, fault
// injector — completely unchanged, so every registry controller runs
// unmodified. The closed-loop session population is what gets parallel:
// it is split into `shards` SessionShards placed round-robin on the worker
// lanes, talking to a LaneGateway on lane 0 across the client<->frontend
// network channel. That channel's latency is the lookahead that makes the
// partition safe (see lanes/lookahead.h for why the profitable cut is the
// client edge and not the inter-tier hops, whose natural delay is zero).
//
// Determinism contract: `lanes` controls thread placement only. lanes=1 and
// lanes=K execute the identical window schedule and the identical keyed
// event sequence, so their results are byte-identical (pinned by
// tests/experiments/lane_determinism_test and the CI bench_scale smoke).
// `shards`, by contrast, is a model parameter — changing it re-partitions
// the session population and legitimately changes RNG consumption.
#pragma once

#include <cstddef>
#include <string>

#include "experiments/graph_runner.h"
#include "experiments/runner.h"
#include "simcore/lanes/lane_engine.h"
#include "simcore/lanes/lookahead.h"

namespace conscale {

struct LanedRunOptions {
  /// Everything run_scaling accepts (duration, monitoring, framework
  /// overrides, faults, context). session_workload is not supported on the
  /// laned path (throws std::invalid_argument).
  ScalingRunOptions base;
  /// Event-loop partitions. 1 = serial reference execution (zero threads,
  /// same window schedule). Results are independent of this value.
  std::size_t lanes = 1;
  /// Session-population partitions. Fixed independently of `lanes` so the
  /// model (and its RNG consumption) does not change with the thread count.
  std::size_t shards = 12;
  /// Client<->frontend one-way network latency — the cross-lane channel
  /// delay and therefore the engine's lookahead window.
  SimDuration net_delay = 0.05;
};

/// Execution report of a laned run (not part of the determinism-compared
/// result payload — wall-clock-free, but kept separate for clarity).
struct LaneRunInfo {
  lanes::LaneEngineStats stats;
  SimDuration lookahead = 0.0;
  lanes::LookaheadAnalysis::Protocol protocol =
      lanes::LookaheadAnalysis::Protocol::kTimeWindow;
  std::string lookahead_summary;
  std::size_t lanes = 0;
  std::size_t shards = 0;
  /// Sessions still alive across every shard when the run ended (the
  /// bench_scale "concurrent sessions" figure).
  std::uint64_t active_sessions = 0;
};

/// Chain counterpart of run_scaling on the lane engine. The result has the
/// exact shape run_scaling produces (same dumps, same results_equivalent),
/// with client statistics merged from the shards in shard-index order.
ScalingRunResult run_scaling_laned(const ScenarioParams& params,
                                   const WorkloadTrace& trace,
                                   const std::string& framework_ref,
                                   const LanedRunOptions& options = {},
                                   LaneRunInfo* info = nullptr);

/// Convenience: trace from a kind, seed derivation identical to
/// run_scaling's (seed ^ 0xbeef).
ScalingRunResult run_scaling_laned(const ScenarioParams& params,
                                   TraceKind trace,
                                   const std::string& framework_ref,
                                   const LanedRunOptions& options = {},
                                   LaneRunInfo* info = nullptr);

/// Service-graph counterpart of run_graph_scaling on the lane engine.
GraphRunResult run_graph_scaling_laned(const GraphScenario& scenario,
                                       const WorkloadTrace& trace,
                                       const std::string& framework_ref,
                                       const LanedRunOptions& options = {},
                                       LaneRunInfo* info = nullptr);

/// Convenience: trace from a kind (seed ^ 0xbeef, as above).
GraphRunResult run_graph_scaling_laned(const GraphScenario& scenario,
                                       TraceKind trace,
                                       const std::string& framework_ref,
                                       const LanedRunOptions& options = {},
                                       LaneRunInfo* info = nullptr);

/// The lookahead analysis a laned run performs before constructing the
/// engine, exposed for tests and bench_scale's banner: the client channel
/// (both directions) bounds the window; VM prep delay and the monitoring
/// coarse period are documented as non-channel slack.
lanes::LookaheadAnalysis analyze_lookahead(const ScenarioParams& params,
                                           const LanedRunOptions& options);

}  // namespace conscale
