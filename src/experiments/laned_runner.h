// Laned experiment runners: run_scaling / run_graph_scaling executed on the
// lane-partitioned PDES engine (src/simcore/lanes/, DESIGN.md §6.6).
//
// Two placements share these entry points:
//
//  * Client-edge partitioning (tier_lanes == 0, the original layout): lane 0
//    hosts the entire serving system — NTierSystem or topology::ServiceGraph,
//    warehouse, monitor, scaling framework, fault injector — completely
//    unchanged, so every registry controller runs unmodified. The closed-loop
//    session population is what gets parallel: it is split into `shards`
//    SessionShards placed round-robin on the worker lanes, talking to a
//    LaneGateway on lane 0 across the client<->frontend network channel.
//
//  * Tier-laned partitioning (tier_lanes > 0): the serving system itself is
//    cut. Cell 0 carries only the control plane (warehouse, monitor coarse
//    poll, scaling framework); TierLanePlacement packs the tiers into cells
//    joined by explicit LAN-hop channels (`lan_delay` per direction); each
//    session shard gets its own cell behind the client network channel. The
//    cell layout is a pure function of the model config, and `tier_lanes`
//    sets ONLY the worker thread count — so tier_lanes=1 and tier_lanes=K
//    are byte-identical under either synchronization protocol. The engine
//    serializes instants where cell 0 acts, which is what lets controllers
//    keep calling scale_out()/scale_in() directly on remote tiers.
//
// Determinism contract: `lanes` / `tier_lanes` control thread placement
// only; results are pinned byte-identical across thread counts by
// tests/experiments/lane_determinism_test and the CI bench_scale smoke.
// `shards`, by contrast, is a model parameter — changing it re-partitions
// the session population and legitimately changes RNG consumption.
#pragma once

#include <cstddef>
#include <string>

#include "experiments/graph_runner.h"
#include "experiments/runner.h"
#include "simcore/lanes/lane_engine.h"
#include "simcore/lanes/lookahead.h"

namespace conscale {

struct LanedRunOptions {
  /// Everything run_scaling accepts (duration, monitoring, framework
  /// overrides, faults, context). session_workload is not supported on the
  /// laned path (throws std::invalid_argument), and fault plans are not
  /// supported with tier_lanes > 0 (the injector mutates tier internals
  /// from lane 0 without a channel).
  ScalingRunOptions base;
  /// Event-loop partitions for the client-edge layout. 1 = serial reference
  /// execution (zero threads, same window schedule). Results are
  /// independent of this value. Ignored when tier_lanes > 0.
  std::size_t lanes = 1;
  /// Session-population partitions. Fixed independently of the thread count
  /// so the model (and its RNG consumption) does not change with it.
  /// 0 = autotune from the scenario's peak sessions and think time (see
  /// autotune_shards); the chosen plan is reported in LaneRunInfo.
  std::size_t shards = 12;
  /// Client<->frontend one-way network latency — the client channel delay.
  SimDuration net_delay = 0.05;
  /// Tier-laned mode switch and worker thread count: 0 keeps the
  /// client-edge layout; K > 0 partitions the system into cells (control /
  /// tier clusters / shards) executed by K threads. The cell layout never
  /// depends on K.
  std::size_t tier_lanes = 0;
  /// Inter-tier LAN hop (each direction) in tier-laned mode — every
  /// tier->tier edge and the tier->control vm-ready signal crosses it, and
  /// it bounds the lookahead window. Must be > 0 when tier_lanes > 0.
  SimDuration lan_delay = 0.010;
  /// Synchronization protocol for tier-laned runs. kAuto defers to the
  /// LookaheadAnalysis skew rule (uniform channels -> time windows, skewed
  /// -> null messages). Ignored when tier_lanes == 0 (the client-edge
  /// layout has uniform channels and always uses time windows).
  enum class ProtocolChoice { kAuto, kTimeWindow, kNullMessage };
  ProtocolChoice protocol = ProtocolChoice::kAuto;
};

/// Execution report of a laned run (not part of the determinism-compared
/// result payload — wall-clock-free, but kept separate for clarity).
struct LaneRunInfo {
  lanes::LaneEngineStats stats;
  SimDuration lookahead = 0.0;
  /// The protocol the engine actually ran (after any override).
  lanes::LookaheadAnalysis::Protocol protocol =
      lanes::LookaheadAnalysis::Protocol::kTimeWindow;
  std::string lookahead_summary;
  /// Engine partitions (cells in tier-laned mode).
  std::size_t lanes = 0;
  /// Worker threads executing them (== lanes in the client-edge layout).
  std::size_t threads = 0;
  std::size_t shards = 0;
  /// True when `shards == 0` selected the count via autotune_shards.
  bool shards_autotuned = false;
  /// Human-readable cell map of a tier-laned run (empty otherwise).
  std::string placement;
  /// Sessions still alive across every shard when the run ended (the
  /// bench_scale "concurrent sessions" figure).
  std::uint64_t active_sessions = 0;
};

/// Shard-count autotune (`shards = 0`): a shard is sized to carry roughly
/// 300 request round-trips per simulated second, and each active session
/// contributes ~1/think_time of them — so the count is
/// ceil(peak_sessions / think_time / 300), clamped to [1, 64]. A pure
/// function of the model parameters (never of lane or thread counts).
std::size_t autotune_shards(double peak_sessions, double think_time_mean);

/// Chain counterpart of run_scaling on the lane engine. The result has the
/// exact shape run_scaling produces (same dumps, same results_equivalent),
/// with client statistics merged from the shards in shard-index order.
ScalingRunResult run_scaling_laned(const ScenarioParams& params,
                                   const WorkloadTrace& trace,
                                   const std::string& framework_ref,
                                   const LanedRunOptions& options = {},
                                   LaneRunInfo* info = nullptr);

/// Convenience: trace from a kind, seed derivation identical to
/// run_scaling's (seed ^ 0xbeef).
ScalingRunResult run_scaling_laned(const ScenarioParams& params,
                                   TraceKind trace,
                                   const std::string& framework_ref,
                                   const LanedRunOptions& options = {},
                                   LaneRunInfo* info = nullptr);

/// Service-graph counterpart of run_graph_scaling on the lane engine.
GraphRunResult run_graph_scaling_laned(const GraphScenario& scenario,
                                       const WorkloadTrace& trace,
                                       const std::string& framework_ref,
                                       const LanedRunOptions& options = {},
                                       LaneRunInfo* info = nullptr);

/// Convenience: trace from a kind (seed ^ 0xbeef, as above).
GraphRunResult run_graph_scaling_laned(const GraphScenario& scenario,
                                       TraceKind trace,
                                       const std::string& framework_ref,
                                       const LanedRunOptions& options = {},
                                       LaneRunInfo* info = nullptr);

/// The lookahead analysis a laned run performs before constructing the
/// engine, exposed for tests and bench_scale's banner. Client-edge layout:
/// the client channel (both directions) bounds the window; VM prep delay
/// and the monitoring coarse period are documented as non-channel slack.
/// Tier-laned layout: the LAN hop joins as a channel (it then bounds the
/// window), and the net/LAN skew drives the protocol recommendation.
lanes::LookaheadAnalysis analyze_lookahead(const ScenarioParams& params,
                                           const LanedRunOptions& options);

}  // namespace conscale
