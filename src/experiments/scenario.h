// Scenario presets: the RUBBoS-like deployment of §II-A, calibrated so the
// paper's concurrency optima and their shifts reproduce (DESIGN.md §4).
// Everything an experiment varies — topology, workload mode, dataset size,
// core counts, soft-resource allocation, trace, scale — is a field here.
#pragma once

#include <cstdint>
#include <string>

#include "cluster/ntier_system.h"
#include "resources/contention.h"
#include "workload/client.h"
#include "workload/mix.h"
#include "workload/trace.h"

namespace conscale {

enum class WorkloadMode { kBrowseOnly, kReadWriteMix };

struct ScenarioParams {
  // ---- workload ----
  WorkloadMode mode = WorkloadMode::kBrowseOnly;
  MixParams mix;           ///< per-tier demand means (see workload/mix.h)
  double think_time = 1.5; ///< client think time mean [s]
  double max_users = 7500.0;
  std::uint64_t seed = 12345;

  /// Speed/fidelity knob: multiplies every service demand by `work_scale`
  /// and divides the user count by it. Throughput scales down by the same
  /// factor while every concurrency optimum — which depends only on demand
  /// *ratios* — stays put. 1.0 = the paper's scale.
  double work_scale = 1.0;

  // ---- initial topology (#Web/#App/#DB) and scaling limits ----
  std::size_t web_init = 1, app_init = 1, db_init = 1;
  std::size_t web_max = 1, app_max = 6, db_max = 5;
  std::size_t web_min = 1, app_min = 1, db_min = 1;
  SimDuration vm_prep_delay = 15.0;  ///< §IV-A preparation period
  LbPolicy lb_policy = LbPolicy::kLeastConnections;

  // ---- hardware per VM ----
  int web_cores = 1, app_cores = 1, db_cores = 1;

  // ---- multithreading overhead (descending-stage strength) ----
  ContentionModel web_contention{200.0, 0.004, 1.0};
  ContentionModel app_contention{40.0, 0.012, 1.0};
  ContentionModel db_contention{20.0, 0.028, 1.0};

  // ---- initial soft resources: the paper's 1000-60-40 ----
  std::size_t web_threads = 1000;
  std::size_t app_threads = 60;
  std::size_t app_dbconn = 40;
  std::size_t db_threads = 400;  ///< MySQL accepts what the conn pools send

  /// Builds the three-tier SystemConfig for these parameters.
  SystemConfig system_config() const;

  /// Builds the request mix for the current mode (work_scale and the mix's
  /// dataset_scale already applied).
  RequestMix make_mix() const;

  /// Effective user count after work_scale compression.
  double scaled_users(double users) const { return users / work_scale; }

  /// Named presets.
  static ScenarioParams paper_default();
  /// Compressed preset for unit/integration tests (work_scale ≈ 8).
  static ScenarioParams test_scale();
};

/// Tier indices in the standard 3-tier layout.
inline constexpr std::size_t kWebTier = 0;
inline constexpr std::size_t kAppTier = 1;
inline constexpr std::size_t kDbTier = 2;

}  // namespace conscale
