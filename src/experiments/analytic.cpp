#include "experiments/analytic.h"

#include <algorithm>
#include <cmath>

namespace conscale {

namespace {

/// Mix-weighted mean of a per-tier demand field.
template <typename Getter>
double weighted_demand(const RequestMix& mix, Getter getter) {
  double total_weight = 0.0;
  double total = 0.0;
  for (const auto& c : mix.classes()) {
    total_weight += c.weight;
    total += c.weight * getter(c);
  }
  return total_weight > 0.0 ? total / total_weight : 0.0;
}

}  // namespace

std::vector<MvaStation> stations_for_tier_profile(const ScenarioParams& params,
                                                  std::size_t target_tier,
                                                  std::size_t helper_app_vms,
                                                  std::size_t helper_db_vms) {
  const RequestMix mix = params.make_mix();
  // Per-request demands, aggregated over the mix. DB demands are per query;
  // a request makes `calls` of them sequentially.
  const double web_cpu = weighted_demand(
      mix, [](const RequestClass& c) { return c.tiers[0].total_cpu(); });
  const double web_delay = weighted_demand(
      mix, [](const RequestClass& c) { return c.tiers[0].pure_delay; });
  const double app_cpu = weighted_demand(
      mix, [](const RequestClass& c) { return c.tiers[1].total_cpu(); });
  const double app_delay = weighted_demand(
      mix, [](const RequestClass& c) { return c.tiers[1].pure_delay; });
  const double calls = weighted_demand(
      mix, [](const RequestClass& c) {
        return static_cast<double>(c.tiers[1].downstream_calls);
      });
  const double db_cpu = weighted_demand(
      mix, [calls](const RequestClass& c) {
        (void)calls;
        return c.tiers[2].total_cpu();
      });
  const double db_delay = weighted_demand(
      mix, [](const RequestClass& c) { return c.tiers[2].pure_delay; });
  const double db_disk = weighted_demand(
      mix, [](const RequestClass& c) { return c.tiers[2].disk; });

  const std::size_t app_vms = target_tier == kAppTier ? 1 : helper_app_vms;
  const std::size_t db_vms = target_tier == kDbTier ? 1 : helper_db_vms;

  std::vector<MvaStation> stations;
  {
    MvaStation s;
    s.name = "web.cpu";
    s.demand = web_cpu;
    s.servers = params.web_cores;
    stations.push_back(s);
  }
  {
    MvaStation s;
    s.name = "web.net";
    s.kind = MvaStation::Kind::kDelay;
    s.demand = web_delay;
    stations.push_back(s);
  }
  {
    MvaStation s;
    s.name = "app.cpu";
    s.demand = app_cpu;
    s.servers = params.app_cores * static_cast<int>(app_vms);
    if (target_tier == kAppTier) s.contention = params.app_contention;
    stations.push_back(s);
  }
  {
    MvaStation s;
    s.name = "app.net";
    s.kind = MvaStation::Kind::kDelay;
    s.demand = app_delay;
    stations.push_back(s);
  }
  {
    MvaStation s;
    s.name = "db.cpu";
    s.demand = calls * db_cpu;
    s.servers = params.db_cores * static_cast<int>(db_vms);
    if (target_tier == kDbTier) s.contention = params.db_contention;
    stations.push_back(s);
  }
  {
    MvaStation s;
    s.name = "db.net";
    s.kind = MvaStation::Kind::kDelay;
    s.demand = calls * db_delay;
    stations.push_back(s);
  }
  if (db_disk > 0.0) {
    MvaStation s;
    s.name = "db.disk";
    s.demand = calls * db_disk;
    s.servers = static_cast<int>(db_vms);  // one channel per DB VM
    stations.push_back(s);
  }
  return stations;
}

DcmProfile train_dcm_profile_analytical(const ScenarioParams& params,
                                        int n_max, double tolerance) {
  DcmProfile profile;
  for (std::size_t tier : {kAppTier, kDbTier}) {
    const auto stations = stations_for_tier_profile(params, tier);
    const AnalyticalRange range =
        analytical_range(stations, n_max, tolerance);
    // The soft resource caps the target *server's* concurrency, not the
    // system population: convert the knee population into the target tier's
    // local mean population. Thread-per-request semantics make a request at
    // the DB still occupy its app-server thread, so the app tier's local
    // population includes everything at or below it in the chain.
    const MvaPoint knee = solve_mva_at(stations, std::max(range.q_lower, 1));
    double local = 0.0;
    for (std::size_t i = 0; i < stations.size(); ++i) {
      const std::string& name = stations[i].name;
      const bool db_side = name.rfind("db.", 0) == 0;
      const bool app_side = name.rfind("app.", 0) == 0;
      if (tier == kDbTier && db_side) local += knee.queue_lengths[i];
      if (tier == kAppTier && (db_side || app_side)) {
        local += knee.queue_lengths[i];
      }
    }
    profile.tier_optimal_concurrency[tier] =
        std::max(static_cast<int>(std::lround(local)), 1);
  }
  return profile;
}

}  // namespace conscale
