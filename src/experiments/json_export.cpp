#include "experiments/json_export.h"

#include <fstream>
#include <ostream>
#include <stdexcept>

#include "common/json.h"

namespace conscale {

void export_run_json(std::ostream& out, const ScalingRunResult& result,
                     const JsonExportOptions& options) {
  JsonWriter json(out);
  json.begin_object();
  json.key("framework").value(result.framework_name);
  json.key("trace").value(result.trace_name);
  if (options.include_counters) {
    json.key("controller").value(result.framework_key);
    json.key("counters").begin_object();
    for (const auto& [name, count] : result.controller_counters) {
      json.key(name).value(count);
    }
    json.end_object();
  }

  json.key("summary").begin_object();
  json.key("mean_rt_ms").value(result.mean_rt_ms);
  json.key("p50_ms").value(result.p50_ms);
  json.key("p95_ms").value(result.p95_ms);
  json.key("p99_ms").value(result.p99_ms);
  json.key("max_rt_ms").value(result.max_rt_ms);
  json.key("sla_500ms").value(result.sla_500ms);
  json.key("requests_issued").value(result.requests_issued);
  json.key("requests_completed").value(result.requests_completed);
  // Shedding keys appear only when admission control actually rejected
  // something, so the JSON of every pre-existing bench stays byte-identical.
  const bool any_rejected = result.requests_rejected > 0;
  if (any_rejected) {
    json.key("requests_rejected").value(result.requests_rejected);
  }
  json.end_object();

  json.key("system_series").begin_array();
  for (const auto& s : result.system) {
    json.begin_object();
    json.key("t").value(s.t);
    json.key("throughput_rps").value(s.throughput);
    json.key("mean_rt_ms").value(s.mean_rt * 1e3);
    json.key("max_rt_ms").value(s.max_rt * 1e3);
    json.key("total_vms").value(static_cast<std::uint64_t>(s.total_vms));
    if (any_rejected) {
      json.key("rejected").value(static_cast<std::uint64_t>(s.rejected));
    }
    json.end_object();
  }
  json.end_array();

  json.key("tiers").begin_object();
  for (const auto& [tier, series] : result.tiers) {
    json.key(tier).begin_array();
    for (const auto& s : series) {
      json.begin_object();
      json.key("t").value(s.t);
      json.key("cpu").value(s.avg_cpu_utilization);
      json.key("billed_vms").value(static_cast<std::uint64_t>(s.billed_vms));
      json.key("running_vms").value(
          static_cast<std::uint64_t>(s.running_vms));
      json.end_object();
    }
    json.end_array();
  }
  json.end_object();

  json.key("events").begin_array();
  for (const auto& e : result.events) {
    json.begin_object();
    json.key("t").value(e.t);
    json.key("tier").value(e.tier);
    json.key("action").value(e.action);
    json.key("value").value(e.value);
    json.end_object();
  }
  json.end_array();

  json.key("sct_history").begin_array();
  for (const auto& h : result.sct_history) {
    json.begin_object();
    json.key("t").value(h.t);
    json.key("tier").value(h.tier);
    json.key("q_lower").value(h.range.q_lower);
    json.key("q_upper").value(h.range.q_upper);
    json.key("tp_max").value(h.range.tp_max);
    json.key("descending_observed").value(h.range.descending_observed);
    json.key("q_upper_censored").value(h.range.q_upper_censored);
    json.end_object();
  }
  json.end_array();

  // Fault section only when the run actually injected something, so the
  // JSON of every pre-existing (fault-free) bench stays byte-identical.
  if (!result.fault_plan_text.empty()) {
    json.key("faults").begin_object();
    json.key("plan").value(result.fault_plan_text);
    json.key("crashes_injected").value(result.fault_stats.crashes_injected);
    json.key("crashes_missed").value(result.fault_stats.crashes_missed);
    json.key("interference_windows")
        .value(result.fault_stats.interference_windows);
    json.key("boot_jitter_windows")
        .value(result.fault_stats.boot_jitter_windows);
    json.key("dropout_windows").value(result.fault_stats.dropout_windows);
    json.key("requests_aborted").value(result.requests_aborted);
    json.key("dropped_samples").value(result.dropped_samples);
    json.key("windows").begin_array();
    for (const auto& w : result.fault_windows) {
      json.begin_object();
      json.key("kind").value(to_string(w.kind));
      json.key("start").value(w.start);
      json.key("end").value(w.end);
      json.key("tier").value(w.tier);
      json.end_object();
    }
    json.end_array();
    json.end_object();
  }

  json.end_object();
}

void export_run_json(const std::string& path, const ScalingRunResult& result,
                     const JsonExportOptions& options) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("export_run_json: cannot open " + path);
  export_run_json(out, result, options);
  out << '\n';
}

void export_scatter_json(std::ostream& out, const ScatterRunResult& result) {
  JsonWriter json(out);
  json.begin_object();
  if (result.range) {
    json.key("estimate").begin_object();
    json.key("q_lower").value(result.range->q_lower);
    json.key("q_upper").value(result.range->q_upper);
    json.key("optimal").value(result.range->optimal);
    json.key("tp_max").value(result.range->tp_max);
    json.key("descending_observed").value(result.range->descending_observed);
    json.end_object();
  } else {
    json.key("estimate").null();
  }
  json.key("samples").begin_array();
  for (const auto& s : result.raw_samples) {
    json.begin_object();
    json.key("t").value(s.t_end);
    json.key("q").value(s.concurrency);
    json.key("tp").value(s.throughput);
    json.key("rt_ms").value(s.mean_rt * 1e3);
    json.end_object();
  }
  json.end_array();
  json.end_object();
}

}  // namespace conscale
