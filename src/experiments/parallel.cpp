#include "experiments/parallel.h"

#include <atomic>
#include <sstream>
#include <stdexcept>
#include <thread>

namespace conscale {

std::size_t default_parallel_jobs() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw ? static_cast<std::size_t>(hw) : 1;
}

namespace detail {

void parallel_for(std::size_t n, std::size_t jobs,
                  const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  std::size_t workers = jobs == 0 ? default_parallel_jobs() : jobs;
  if (workers > n) workers = n;

  std::vector<std::exception_ptr> errors(n);
  auto run_index = [&](std::size_t i) {
    try {
      body(i);
    } catch (...) {
      errors[i] = std::current_exception();
    }
  };

  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) run_index(i);
  } else {
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      threads.emplace_back([&] {
        for (std::size_t i = next.fetch_add(1); i < n;
             i = next.fetch_add(1)) {
          run_index(i);
        }
      });
    }
    for (auto& thread : threads) thread.join();
  }

  // Failures surface deterministically: the lowest failing index wins, no
  // matter which worker hit it first.
  for (auto& error : errors) {
    if (error) std::rethrow_exception(error);
  }
}

}  // namespace detail

ScalingRunResult RunSet::run_one(const RunSpec& spec) {
  ScalingRunOptions options = spec.options;
  std::string label = spec.label;
  if (label.empty()) {
    // Derive from the registry display name so builtin labels keep their
    // historical spelling ("ConScale/LARGE_VARIATIONS"). Validates the
    // reference before the run starts — unknown names abort loudly here.
    const ControllerRef ref = parse_controller_ref(spec.framework);
    label = ControllerRegistry::global().at(ref.name).display_name + "/" +
            to_string(spec.trace);
  }
  options.context.set_label(label);
  return run_scaling(spec.params, spec.trace, spec.framework, options);
}

std::vector<ScalingRunResult> RunSet::run(
    const std::vector<RunSpec>& specs) const {
  std::vector<ScalingRunResult> results =
      parallel_map<ScalingRunResult>(specs.size(), options_.jobs,
                                     [&specs](std::size_t i) {
                                       return run_one(specs[i]);
                                     });
  if (options_.deterministic) {
    for (std::size_t i = 0; i < specs.size(); ++i) {
      const ScalingRunResult serial = run_one(specs[i]);
      std::string diff;
      if (!results_equivalent(results[i], serial, &diff)) {
        std::ostringstream message;
        message << "RunSet determinism violation in spec " << i << " ("
                << serial.framework_name << "/" << serial.trace_name
                << "): " << diff;
        throw std::logic_error(message.str());
      }
    }
  }
  return results;
}

namespace {

bool fail(std::string* diff, const std::string& message) {
  if (diff) *diff = message;
  return false;
}

std::string at(const char* series, std::size_t i, const char* field) {
  std::ostringstream out;
  out << series << "[" << i << "]." << field;
  return out.str();
}

bool tier_series_equal(const std::vector<TierSample>& a,
                       const std::vector<TierSample>& b, std::string* diff,
                       const std::string& name) {
  if (a.size() != b.size()) return fail(diff, name + " length");
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].t != b[i].t) return fail(diff, at(name.c_str(), i, "t"));
    if (a[i].avg_cpu_utilization != b[i].avg_cpu_utilization)
      return fail(diff, at(name.c_str(), i, "avg_cpu_utilization"));
    if (a[i].billed_vms != b[i].billed_vms)
      return fail(diff, at(name.c_str(), i, "billed_vms"));
    if (a[i].running_vms != b[i].running_vms)
      return fail(diff, at(name.c_str(), i, "running_vms"));
  }
  return true;
}

}  // namespace

bool results_equivalent(const ScalingRunResult& a, const ScalingRunResult& b,
                        std::string* diff) {
  if (a.framework_name != b.framework_name)
    return fail(diff, "framework_name");
  if (a.framework_key != b.framework_key) return fail(diff, "framework_key");
  if (a.trace_name != b.trace_name) return fail(diff, "trace_name");
  if (a.controller_counters != b.controller_counters)
    return fail(diff, "controller_counters");

  if (a.system.size() != b.system.size())
    return fail(diff, "system series length");
  for (std::size_t i = 0; i < a.system.size(); ++i) {
    const SystemSample& x = a.system[i];
    const SystemSample& y = b.system[i];
    if (x.t != y.t) return fail(diff, at("system", i, "t"));
    if (x.throughput != y.throughput)
      return fail(diff, at("system", i, "throughput"));
    if (x.mean_rt != y.mean_rt) return fail(diff, at("system", i, "mean_rt"));
    if (x.max_rt != y.max_rt) return fail(diff, at("system", i, "max_rt"));
    if (x.total_vms != y.total_vms)
      return fail(diff, at("system", i, "total_vms"));
    if (x.rejected != y.rejected)
      return fail(diff, at("system", i, "rejected"));
  }

  if (a.tiers.size() != b.tiers.size()) return fail(diff, "tier count");
  for (const auto& [name, series] : a.tiers) {
    auto it = b.tiers.find(name);
    if (it == b.tiers.end()) return fail(diff, "missing tier " + name);
    if (!tier_series_equal(series, it->second, diff, "tier " + name))
      return false;
  }

  if (a.events.size() != b.events.size()) return fail(diff, "event count");
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    const ScalingEvent& x = a.events[i];
    const ScalingEvent& y = b.events[i];
    if (x.t != y.t || x.tier != y.tier || x.action != y.action ||
        x.value != y.value) {
      return fail(diff, at("events", i, "fields"));
    }
  }

  if (a.sct_history.size() != b.sct_history.size())
    return fail(diff, "sct_history length");
  for (std::size_t i = 0; i < a.sct_history.size(); ++i) {
    const auto& x = a.sct_history[i];
    const auto& y = b.sct_history[i];
    if (x.t != y.t || x.tier != y.tier ||
        x.range.q_lower != y.range.q_lower ||
        x.range.q_upper != y.range.q_upper ||
        x.range.optimal != y.range.optimal ||
        x.range.tp_max != y.range.tp_max ||
        x.range.descending_observed != y.range.descending_observed ||
        x.range.q_upper_censored != y.range.q_upper_censored) {
      return fail(diff, at("sct_history", i, "fields"));
    }
  }

  if (a.mean_rt_ms != b.mean_rt_ms) return fail(diff, "mean_rt_ms");
  if (a.p50_ms != b.p50_ms) return fail(diff, "p50_ms");
  if (a.p95_ms != b.p95_ms) return fail(diff, "p95_ms");
  if (a.p99_ms != b.p99_ms) return fail(diff, "p99_ms");
  if (a.max_rt_ms != b.max_rt_ms) return fail(diff, "max_rt_ms");
  if (a.sla_500ms != b.sla_500ms) return fail(diff, "sla_500ms");
  if (a.requests_issued != b.requests_issued)
    return fail(diff, "requests_issued");
  if (a.requests_completed != b.requests_completed)
    return fail(diff, "requests_completed");
  if (a.requests_rejected != b.requests_rejected)
    return fail(diff, "requests_rejected");
  if (a.hook_underflows != b.hook_underflows)
    return fail(diff, "hook_underflows");

  // Fault-injection outcome must replay exactly too (all fields zero/empty
  // for fault-free runs, so this is free there).
  if (a.fault_plan_text != b.fault_plan_text)
    return fail(diff, "fault_plan_text");
  if (a.requests_aborted != b.requests_aborted)
    return fail(diff, "requests_aborted");
  if (a.dropped_samples != b.dropped_samples)
    return fail(diff, "dropped_samples");
  if (a.fault_stats.crashes_injected != b.fault_stats.crashes_injected ||
      a.fault_stats.crashes_missed != b.fault_stats.crashes_missed ||
      a.fault_stats.interference_windows !=
          b.fault_stats.interference_windows ||
      a.fault_stats.boot_jitter_windows != b.fault_stats.boot_jitter_windows ||
      a.fault_stats.dropout_windows != b.fault_stats.dropout_windows) {
    return fail(diff, "fault_stats");
  }
  if (a.fault_windows.size() != b.fault_windows.size())
    return fail(diff, "fault_windows length");
  for (std::size_t i = 0; i < a.fault_windows.size(); ++i) {
    const FaultWindow& x = a.fault_windows[i];
    const FaultWindow& y = b.fault_windows[i];
    if (x.kind != y.kind || x.start != y.start || x.end != y.end ||
        x.tier != y.tier) {
      return fail(diff, at("fault_windows", i, "fields"));
    }
  }
  return true;
}

}  // namespace conscale
